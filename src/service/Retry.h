//===- Retry.h - Outcome classification and the retry ladder ----*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What happens after a worker comes back: its WorkerResult is
/// classified into a JobOutcome, and failures walk a retry ladder that
/// pairs exponential backoff with *precision degradation* -- the same
/// move PR 2's DegradingOracle makes inside one compile, lifted to the
/// batch level. A job that crashed or hung under full TBAA is retried
/// with the TypeDecl oracle, then with optimization off entirely
/// (-O0), so a pathological input degrades gracefully instead of
/// failing the batch:
///
///     full  ->  typedecl  ->  noopt (floor)
///
/// Deterministic rejections (diagnostics, usage) never retry: the input
/// is wrong, not the fleet.
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_SERVICE_RETRY_H
#define TBAA_SERVICE_RETRY_H

#include "service/Worker.h"

#include <cstdint>

namespace tbaa {

/// The batch-level precision ladder. Full runs the job as configured
/// (SMFieldTypeRefs TBAA + the whole pass pipeline), TypeDecl drops the
/// oracle to the declared-type floor, NoOpt compiles and runs with the
/// optimizer off.
enum class DegradeLevel : uint8_t { Full = 0, TypeDecl = 1, NoOpt = 2 };

const char *degradeLevelName(DegradeLevel L);

/// Parses a degradeLevelName() string; returns false on unknown names.
bool parseDegradeLevel(const std::string &Name, DegradeLevel &Out);

/// One rung down. Returns false (and leaves \p L alone) at the floor.
bool stepDown(DegradeLevel &L);

/// The classified fate of one attempt.
enum class JobOutcome : uint8_t {
  Ok,          ///< Exit 0.
  Diagnostics, ///< Exit 1: rejected or trapped -- deterministic, final.
  Usage,       ///< Exit 2: driver misuse -- deterministic, final.
  Internal,    ///< Exit 3 or a lost child: retryable.
  Crash,       ///< Killed by a signal: retryable.
  Timeout,     ///< Watchdog wall kill or SIGXCPU: retryable.
};

const char *jobOutcomeName(JobOutcome O);

/// Parses a jobOutcomeName() string; returns false on unknown names.
bool parseJobOutcome(const std::string &Name, JobOutcome &Out);

JobOutcome classifyWorker(const WorkerResult &R);

/// True for the outcomes the ladder retries (Internal/Crash/Timeout).
bool outcomeRetryable(JobOutcome O);

struct RetryPolicy {
  /// Total attempts per job, counting the first. 3 covers the whole
  /// ladder: full, typedecl, noopt.
  unsigned MaxAttempts = 3;
  uint64_t BackoffBaseMs = 100;
  uint64_t BackoffCapMs = 5000;
  /// Step the precision ladder down on each retry. Off, retries rerun
  /// at the same level (for flaky-environment failures).
  bool DegradeOnRetry = true;
};

struct RetryDecision {
  bool Retry = false;
  DegradeLevel NextLevel = DegradeLevel::Full;
  uint64_t DelayMs = 0;
};

/// Decides what to do after attempt \p Attempt (1-based) at \p Level
/// ended in \p Outcome.
RetryDecision decideRetry(const RetryPolicy &Policy, JobOutcome Outcome,
                          unsigned Attempt, DegradeLevel Level);

} // namespace tbaa

#endif // TBAA_SERVICE_RETRY_H
