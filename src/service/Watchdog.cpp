//===- Watchdog.cpp -------------------------------------------------------===//

#include "service/Watchdog.h"

using namespace tbaa;

void Watchdog::arm(int Pid, Deadline D) {
  for (Entry &E : Entries)
    if (E.Pid == Pid) {
      E.D = D;
      return;
    }
  Entries.push_back({Pid, D});
}

void Watchdog::disarm(int Pid) {
  for (size_t I = 0; I != Entries.size(); ++I)
    if (Entries[I].Pid == Pid) {
      Entries.erase(Entries.begin() + static_cast<long>(I));
      return;
    }
}

std::vector<int> Watchdog::expired(uint64_t NowMs) const {
  std::vector<int> Out;
  for (const Entry &E : Entries)
    if (E.D.expired(NowMs))
      Out.push_back(E.Pid);
  return Out;
}

uint64_t Watchdog::nextDeadlineMs() const {
  uint64_t Min = 0;
  for (const Entry &E : Entries)
    if (E.D.armed() && (!Min || E.D.AtMs < Min))
      Min = E.D.AtMs;
  return Min;
}
