//===- BatchConfig.cpp ----------------------------------------------------===//

#include "service/BatchConfig.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace tbaa;

namespace {

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r");
  return S.substr(B, E - B + 1);
}

bool parseU64(const std::string &V, uint64_t &Out) {
  if (V.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(V.c_str(), &End, 10);
  return End && !*End;
}

} // namespace

bool BatchConfig::parse(const std::string &Text, BatchConfig &Out,
                        std::string &Error) {
  std::istringstream In(Text);
  std::string Line;
  size_t LineNo = 0;
  auto Fail = [&](const std::string &Why) {
    std::ostringstream SS;
    SS << "line " << LineNo << ": " << Why;
    Error = SS.str();
    return false;
  };
  while (std::getline(In, Line)) {
    ++LineNo;
    std::string S = trim(Line);
    if (S.empty() || S[0] == '#')
      continue;
    size_t Eq = S.find('=');
    if (Eq == std::string::npos)
      return Fail("expected 'key = value'");
    std::string Key = trim(S.substr(0, Eq));
    std::string Value = trim(S.substr(Eq + 1));
    uint64_t U = 0;
    if (Key == "level") {
      if (Value != "typedecl" && Value != "fieldtypedecl" &&
          Value != "smfieldtyperefs")
        return Fail("unknown level '" + Value + "'");
      Out.Level = Value;
      continue;
    }
    if (!parseU64(Value, U))
      return Fail("'" + Key + "' needs an unsigned integer, got '" + Value +
                  "'");
    if (Key == "analysis_budget")
      Out.AnalysisBudget = U;
    else if (Key == "max_errors")
      Out.MaxErrors = static_cast<unsigned>(U);
    else if (Key == "timeout_ms")
      Out.TimeoutMs = U;
    else if (Key == "cpu_seconds")
      Out.CpuSeconds = U;
    else if (Key == "memory_mb")
      Out.MemoryMB = U;
    else if (Key == "retries") {
      if (!U)
        return Fail("'retries' must be at least 1");
      Out.Retries = static_cast<unsigned>(U);
    } else if (Key == "backoff_ms")
      Out.BackoffMs = U;
    else if (Key == "backoff_cap_ms")
      Out.BackoffCapMs = U;
    else if (Key == "parallel") {
      if (!U)
        return Fail("'parallel' must be at least 1");
      Out.Parallel = static_cast<unsigned>(U);
    } else
      return Fail("unknown key '" + Key + "'");
  }
  return true;
}

bool BatchConfig::loadFile(const std::string &Path, BatchConfig &Out,
                           std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  if (!BatchConfig::parse(SS.str(), Out, Error)) {
    Error = Path + ": " + Error;
    return false;
  }
  return true;
}
