//===- Journal.cpp --------------------------------------------------------===//

#include "service/Journal.h"

#include "support/CRC32.h"
#include "support/FaultInjector.h"
#include "support/JSONUtil.h"
#include "support/SafeIO.h"
#include "support/Stats.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace tbaa;

namespace {

Statistic NumRepairedTails("journal", "repaired-tail",
                           "torn journal tails truncated on load");

} // namespace

std::string JournalRecord::toJSONLine() const {
  json::Writer W;
  W.beginObject();
  W.key("job").value(Job);
  W.key("attempt").value(static_cast<uint64_t>(Attempt));
  W.key("degrade").value(degradeLevelName(Level));
  W.key("outcome").value(jobOutcomeName(Outcome));
  W.key("exit").value(static_cast<int64_t>(ExitCode));
  W.key("signal").value(static_cast<int64_t>(Signal));
  W.key("wall_ms").value(WallMs);
  W.key("cpu_ms").value(CpuMs);
  W.key("peak_rss_kb").value(PeakRSSKB);
  W.key("minflt").value(MinFlt);
  W.key("majflt").value(MajFlt);
  W.key("backoff_ms").value(BackoffMs);
  W.key("final").value(Final);
  if (Quarantined)
    W.key("quarantined").value(true);
  if (HasResult)
    W.key("result").value(Result);
  if (HasOracleMetrics) {
    W.key("oracle_queries").value(OracleQueries);
    W.key("oracle_p50_ns").value(OracleP50Ns);
    W.key("oracle_p90_ns").value(OracleP90Ns);
    W.key("oracle_max_ns").value(OracleMaxNs);
  }
  if (HasPcacheMetrics) {
    W.key("pcache_hit").value(PcacheHits);
    W.key("pcache_miss").value(PcacheMisses);
  }
  W.endObject();
  // The crc is always the last key: CRC-32 of the line as serialized
  // without it, spliced in before the closing brace. The loader
  // reconstructs that prefix textually, so same-version records
  // round-trip byte-for-byte.
  std::string S = W.str();
  uint32_t C = crc32(S.data(), S.size());
  S.pop_back();
  S += ",\"crc\":";
  S += std::to_string(C);
  S += '}';
  return S;
}

Journal::~Journal() {
  if (Fd >= 0)
    ::close(Fd);
}

bool Journal::open(const std::string &Path, bool Truncate,
                   bool FsyncEachRecord) {
  if (Fd >= 0)
    ::close(Fd);
  int Flags = O_WRONLY | O_CREAT | O_APPEND | (Truncate ? O_TRUNC : 0);
  Fd = ::open(Path.c_str(), Flags, 0644);
  FsyncEach = FsyncEachRecord;
  Broken = false;
  LastError.clear();
  return Fd >= 0;
}

bool Journal::append(const JournalRecord &R) {
  if (Fd < 0)
    return true; // journaling disabled: appends are no-ops, not errors
  if (Broken)
    return false; // appending onto a torn line would corrupt the interior
  std::string Line = R.toJSONLine();
  Line += '\n';
  if (!fault::writeAll(Fd, Line.data(), Line.size(), "journal.append")) {
    Broken = true;
    LastError = std::string("journal append failed: ") + std::strerror(errno);
    return false;
  }
  if (FsyncEach) {
    bool SyncOk;
    switch (fault::at("journal.fsync")) {
    case fault::Action::Kill:
      // The record's bytes are written but not yet synced -- the
      // durability hole --journal-fsync exists to close.
      fault::killSelf();
    case fault::Action::ShortWrite:
    case fault::Action::Enospc:
      errno = ENOSPC;
      SyncOk = false;
      break;
    case fault::Action::Eagain:
      errno = EAGAIN;
      SyncOk = false;
      break;
    default: // Eintr: fsync restarts transparently; None: the real sync
      SyncOk = ::fsync(Fd) == 0;
      break;
    }
    if (!SyncOk) {
      Broken = true;
      LastError = std::string("journal fsync failed: ") + std::strerror(errno);
      return false;
    }
  }
  return true;
}

namespace {

bool skipWS(const std::string &S, size_t &I) {
  while (I < S.size() &&
         (S[I] == ' ' || S[I] == '\t' || S[I] == '\r' || S[I] == '\n'))
    ++I;
  return I < S.size();
}

bool parseJSONString(const std::string &S, size_t &I, std::string &Out) {
  if (I >= S.size() || S[I] != '"')
    return false;
  ++I;
  Out.clear();
  while (I < S.size()) {
    char C = S[I++];
    if (C == '"')
      return true;
    if (C == '\\') {
      if (I >= S.size())
        return false;
      char E = S[I++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (I + 4 > S.size())
          return false;
        // Only the \u00XX range the writer emits; anything else keeps
        // its low byte, which is fine for journal text.
        unsigned V = 0;
        for (int K = 0; K != 4; ++K) {
          char H = S[I++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            return false;
        }
        Out += static_cast<char>(V & 0xff);
        break;
      }
      default:
        return false;
      }
    } else {
      Out += C;
    }
  }
  return false; // unterminated
}

} // namespace

bool tbaa::parseFlatJSONObject(const std::string &Line,
                               std::map<std::string, std::string> &Out) {
  Out.clear();
  size_t I = 0;
  if (!skipWS(Line, I) || Line[I] != '{')
    return false;
  ++I;
  if (!skipWS(Line, I))
    return false;
  if (Line[I] == '}') {
    ++I;
  } else {
    while (true) {
      std::string Key;
      if (!skipWS(Line, I) || !parseJSONString(Line, I, Key))
        return false;
      if (!skipWS(Line, I) || Line[I] != ':')
        return false;
      ++I;
      if (!skipWS(Line, I))
        return false;
      std::string Value;
      if (Line[I] == '"') {
        if (!parseJSONString(Line, I, Value))
          return false;
      } else if (Line[I] == '{' || Line[I] == '[') {
        return false; // flat objects only, by design
      } else {
        size_t Start = I;
        while (I < Line.size() && Line[I] != ',' && Line[I] != '}' &&
               Line[I] != ' ' && Line[I] != '\t')
          ++I;
        Value = Line.substr(Start, I - Start);
        if (Value.empty())
          return false;
      }
      Out[Key] = Value;
      if (!skipWS(Line, I))
        return false;
      if (Line[I] == ',') {
        ++I;
        continue;
      }
      if (Line[I] == '}') {
        ++I;
        break;
      }
      return false;
    }
  }
  skipWS(Line, I);
  return I == Line.size();
}

namespace {

bool getUInt(const std::map<std::string, std::string> &M, const char *Key,
             uint64_t &Out) {
  auto It = M.find(Key);
  if (It == M.end())
    return false;
  char *End = nullptr;
  Out = std::strtoull(It->second.c_str(), &End, 10);
  return End && !*End && !It->second.empty();
}

bool getInt(const std::map<std::string, std::string> &M, const char *Key,
            int64_t &Out) {
  auto It = M.find(Key);
  if (It == M.end())
    return false;
  char *End = nullptr;
  Out = std::strtoll(It->second.c_str(), &End, 10);
  return End && !*End && !It->second.empty();
}

bool recordFromMap(const std::map<std::string, std::string> &M,
                   JournalRecord &R, std::string &Why) {
  auto Fail = [&](const char *W) {
    Why = W;
    return false;
  };
  auto Job = M.find("job");
  if (Job == M.end())
    return Fail("missing 'job'");
  R.Job = Job->second;
  uint64_t U = 0;
  int64_t V = 0;
  if (!getUInt(M, "attempt", U) || !U)
    return Fail("bad 'attempt'");
  R.Attempt = static_cast<unsigned>(U);
  auto Deg = M.find("degrade");
  if (Deg == M.end() || !parseDegradeLevel(Deg->second, R.Level))
    return Fail("bad 'degrade'");
  auto Out = M.find("outcome");
  if (Out == M.end() || !parseJobOutcome(Out->second, R.Outcome))
    return Fail("bad 'outcome'");
  if (!getInt(M, "exit", V))
    return Fail("bad 'exit'");
  R.ExitCode = static_cast<int>(V);
  if (!getInt(M, "signal", V))
    return Fail("bad 'signal'");
  R.Signal = static_cast<int>(V);
  if (!getUInt(M, "wall_ms", R.WallMs))
    return Fail("bad 'wall_ms'");
  if (!getUInt(M, "cpu_ms", R.CpuMs))
    return Fail("bad 'cpu_ms'");
  if (!getUInt(M, "peak_rss_kb", R.PeakRSSKB))
    return Fail("bad 'peak_rss_kb'");
  if (!getUInt(M, "minflt", R.MinFlt))
    return Fail("bad 'minflt'");
  if (!getUInt(M, "majflt", R.MajFlt))
    return Fail("bad 'majflt'");
  if (!getUInt(M, "backoff_ms", R.BackoffMs))
    return Fail("bad 'backoff_ms'");
  auto Fin = M.find("final");
  if (Fin == M.end() || (Fin->second != "true" && Fin->second != "false"))
    return Fail("bad 'final'");
  R.Final = Fin->second == "true";
  auto Q = M.find("quarantined");
  if (Q != M.end()) {
    if (Q->second != "true" && Q->second != "false")
      return Fail("bad 'quarantined'");
    R.Quarantined = Q->second == "true";
  }
  R.HasResult = getInt(M, "result", V);
  R.Result = R.HasResult ? V : 0;
  R.HasOracleMetrics = getUInt(M, "oracle_queries", R.OracleQueries);
  if (R.HasOracleMetrics) {
    if (!getUInt(M, "oracle_p50_ns", R.OracleP50Ns) ||
        !getUInt(M, "oracle_p90_ns", R.OracleP90Ns) ||
        !getUInt(M, "oracle_max_ns", R.OracleMaxNs))
      return Fail("incomplete oracle_* summary");
  }
  R.HasPcacheMetrics = getUInt(M, "pcache_hit", R.PcacheHits);
  if (R.HasPcacheMetrics) {
    if (!getUInt(M, "pcache_miss", R.PcacheMisses))
      return Fail("incomplete pcache_* summary");
  }
  return true;
}

/// Verifies a record line's crc against its own bytes. The appender
/// emits crc as the last key, so the checked prefix is reconstructible
/// textually: strip the exact `,"crc":<raw>}` suffix, restore the
/// closing brace, and checksum that. A line whose crc member is not in
/// that exact tail position/format fails the check -- which is the
/// right answer, since our writer never produces such a line and a
/// reshuffled one means the bytes are not what we wrote.
bool verifyLineCrc(const std::string &Line, const std::string &Raw) {
  uint64_t Want = 0;
  if (Raw.empty())
    return false;
  char *End = nullptr;
  Want = std::strtoull(Raw.c_str(), &End, 10);
  if (!End || *End || Want > 0xFFFFFFFFull)
    return false;
  std::string Suffix = ",\"crc\":" + Raw + "}";
  if (Line.size() <= Suffix.size() ||
      Line.compare(Line.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
    return false;
  std::string Prefix = Line.substr(0, Line.size() - Suffix.size());
  Prefix += '}';
  return crc32(Prefix.data(), Prefix.size()) == static_cast<uint32_t>(Want);
}

} // namespace

bool Journal::load(const std::string &Path, std::vector<JournalRecord> &Out,
                   std::string &Error, bool RepairTail,
                   std::string *RepairNote) {
  Out.clear();
  Error.clear();
  if (RepairNote)
    RepairNote->clear();
  struct stat St{};
  if (::stat(Path.c_str(), &St) != 0)
    return true; // no journal yet: empty, not an error
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::string Content((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());

  // Split into (offset, line) so a torn final line can be truncated at
  // its exact byte position. A file not ending in '\n' yields a final
  // partial line -- the classic scar of a killed append.
  struct Entry {
    size_t Offset;
    size_t LineNo;
    std::string Line;
  };
  std::vector<Entry> Lines;
  size_t LineNo = 0;
  for (size_t Pos = 0; Pos < Content.size();) {
    size_t NL = Content.find('\n', Pos);
    size_t End = NL == std::string::npos ? Content.size() : NL;
    ++LineNo;
    if (End != Pos)
      Lines.push_back({Pos, LineNo, Content.substr(Pos, End - Pos)});
    Pos = NL == std::string::npos ? Content.size() : NL + 1;
  }

  for (size_t I = 0; I != Lines.size(); ++I) {
    const Entry &E = Lines[I];
    const bool IsLast = I + 1 == Lines.size();
    std::map<std::string, std::string> M;
    JournalRecord R;
    std::string Why;

    bool Parsed = parseFlatJSONObject(E.Line, M);
    bool CrcPresent = false, CrcOk = false;
    if (Parsed) {
      auto It = M.find("crc");
      if (It != M.end()) {
        CrcPresent = true;
        CrcOk = verifyLineCrc(E.Line, It->second);
      }
    }

    if (Parsed && (!CrcPresent || CrcOk) && recordFromMap(M, R, Why)) {
      Out.push_back(std::move(R));
      continue;
    }

    // Classify the failure. A verified crc means the bytes are exactly
    // what the appender wrote, so a record that still fails validation
    // is a schema bug -- never repairable. Everything else on the final
    // line is indistinguishable from a torn append.
    std::string What = !Parsed                 ? "malformed JSON line"
                       : (CrcPresent && !CrcOk) ? "crc mismatch"
                                                : Why;
    bool Repairable = !(Parsed && CrcPresent && CrcOk);

    if (IsLast && RepairTail && Repairable) {
      if (::truncate(Path.c_str(), static_cast<off_t>(E.Offset)) != 0) {
        std::ostringstream SS;
        SS << Path << ":" << E.LineNo << ": " << What
           << " (tail repair failed: " << std::strerror(errno) << ")";
        Error = SS.str();
        return false;
      }
      NumRepairedTails += 1;
      std::ostringstream SS;
      SS << Path << ":" << E.LineNo << ": repaired torn tail (" << What
         << "); truncated";
      if (RepairNote)
        *RepairNote = SS.str();
      std::fprintf(stderr, "journal: %s\n", SS.str().c_str());
      return true;
    }

    std::ostringstream SS;
    SS << Path << ":" << E.LineNo << ": " << What;
    Error = SS.str();
    return false;
  }
  return true;
}

bool Journal::compact(const std::string &Path,
                      const std::vector<JournalRecord> &Keep,
                      std::string &Error) {
  std::string Tmp = Path + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    Error = "cannot write '" + Tmp + "'";
    return false;
  }
  std::string Buf;
  for (const JournalRecord &R : Keep) {
    Buf += R.toJSONLine();
    Buf += '\n';
  }
  bool Ok = safeio::writeAll(Fd, Buf.data(), Buf.size());
  // The rename must never make a not-yet-durable file the journal.
  Ok = ::fsync(Fd) == 0 && Ok;
  ::close(Fd);
  if (!Ok || ::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Error = "cannot replace journal '" + Path + "'";
    ::unlink(Tmp.c_str());
    return false;
  }
  return true;
}

std::set<std::string>
Journal::finishedJobs(const std::vector<JournalRecord> &Records) {
  std::set<std::string> Done;
  for (const JournalRecord &R : Records)
    if (R.Final)
      Done.insert(R.Job);
  return Done;
}
