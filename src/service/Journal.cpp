//===- Journal.cpp --------------------------------------------------------===//

#include "service/Journal.h"

#include "support/JSONUtil.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

using namespace tbaa;

std::string JournalRecord::toJSONLine() const {
  json::Writer W;
  W.beginObject();
  W.key("job").value(Job);
  W.key("attempt").value(static_cast<uint64_t>(Attempt));
  W.key("degrade").value(degradeLevelName(Level));
  W.key("outcome").value(jobOutcomeName(Outcome));
  W.key("exit").value(static_cast<int64_t>(ExitCode));
  W.key("signal").value(static_cast<int64_t>(Signal));
  W.key("wall_ms").value(WallMs);
  W.key("cpu_ms").value(CpuMs);
  W.key("peak_rss_kb").value(PeakRSSKB);
  W.key("minflt").value(MinFlt);
  W.key("majflt").value(MajFlt);
  W.key("backoff_ms").value(BackoffMs);
  W.key("final").value(Final);
  if (HasResult)
    W.key("result").value(Result);
  if (HasOracleMetrics) {
    W.key("oracle_queries").value(OracleQueries);
    W.key("oracle_p50_ns").value(OracleP50Ns);
    W.key("oracle_p90_ns").value(OracleP90Ns);
    W.key("oracle_max_ns").value(OracleMaxNs);
  }
  W.endObject();
  return W.str();
}

Journal::~Journal() {
  if (File)
    std::fclose(File);
}

bool Journal::open(const std::string &Path, bool Truncate) {
  if (File)
    std::fclose(File);
  File = std::fopen(Path.c_str(), Truncate ? "w" : "a");
  return File != nullptr;
}

void Journal::append(const JournalRecord &R) {
  if (!File)
    return;
  std::string Line = R.toJSONLine();
  Line += '\n';
  std::fwrite(Line.data(), 1, Line.size(), File);
  // Flushed per record: the journal must survive the *driver* dying,
  // not just a worker.
  std::fflush(File);
}

namespace {

bool skipWS(const std::string &S, size_t &I) {
  while (I < S.size() &&
         (S[I] == ' ' || S[I] == '\t' || S[I] == '\r' || S[I] == '\n'))
    ++I;
  return I < S.size();
}

bool parseJSONString(const std::string &S, size_t &I, std::string &Out) {
  if (I >= S.size() || S[I] != '"')
    return false;
  ++I;
  Out.clear();
  while (I < S.size()) {
    char C = S[I++];
    if (C == '"')
      return true;
    if (C == '\\') {
      if (I >= S.size())
        return false;
      char E = S[I++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (I + 4 > S.size())
          return false;
        // Only the \u00XX range the writer emits; anything else keeps
        // its low byte, which is fine for journal text.
        unsigned V = 0;
        for (int K = 0; K != 4; ++K) {
          char H = S[I++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            return false;
        }
        Out += static_cast<char>(V & 0xff);
        break;
      }
      default:
        return false;
      }
    } else {
      Out += C;
    }
  }
  return false; // unterminated
}

} // namespace

bool tbaa::parseFlatJSONObject(const std::string &Line,
                               std::map<std::string, std::string> &Out) {
  Out.clear();
  size_t I = 0;
  if (!skipWS(Line, I) || Line[I] != '{')
    return false;
  ++I;
  if (!skipWS(Line, I))
    return false;
  if (Line[I] == '}') {
    ++I;
  } else {
    while (true) {
      std::string Key;
      if (!skipWS(Line, I) || !parseJSONString(Line, I, Key))
        return false;
      if (!skipWS(Line, I) || Line[I] != ':')
        return false;
      ++I;
      if (!skipWS(Line, I))
        return false;
      std::string Value;
      if (Line[I] == '"') {
        if (!parseJSONString(Line, I, Value))
          return false;
      } else if (Line[I] == '{' || Line[I] == '[') {
        return false; // flat objects only, by design
      } else {
        size_t Start = I;
        while (I < Line.size() && Line[I] != ',' && Line[I] != '}' &&
               Line[I] != ' ' && Line[I] != '\t')
          ++I;
        Value = Line.substr(Start, I - Start);
        if (Value.empty())
          return false;
      }
      Out[Key] = Value;
      if (!skipWS(Line, I))
        return false;
      if (Line[I] == ',') {
        ++I;
        continue;
      }
      if (Line[I] == '}') {
        ++I;
        break;
      }
      return false;
    }
  }
  skipWS(Line, I);
  return I == Line.size();
}

namespace {

bool getUInt(const std::map<std::string, std::string> &M, const char *Key,
             uint64_t &Out) {
  auto It = M.find(Key);
  if (It == M.end())
    return false;
  char *End = nullptr;
  Out = std::strtoull(It->second.c_str(), &End, 10);
  return End && !*End && !It->second.empty();
}

bool getInt(const std::map<std::string, std::string> &M, const char *Key,
            int64_t &Out) {
  auto It = M.find(Key);
  if (It == M.end())
    return false;
  char *End = nullptr;
  Out = std::strtoll(It->second.c_str(), &End, 10);
  return End && !*End && !It->second.empty();
}

bool recordFromMap(const std::map<std::string, std::string> &M,
                   JournalRecord &R, std::string &Why) {
  auto Fail = [&](const char *W) {
    Why = W;
    return false;
  };
  auto Job = M.find("job");
  if (Job == M.end())
    return Fail("missing 'job'");
  R.Job = Job->second;
  uint64_t U = 0;
  int64_t V = 0;
  if (!getUInt(M, "attempt", U) || !U)
    return Fail("bad 'attempt'");
  R.Attempt = static_cast<unsigned>(U);
  auto Deg = M.find("degrade");
  if (Deg == M.end() || !parseDegradeLevel(Deg->second, R.Level))
    return Fail("bad 'degrade'");
  auto Out = M.find("outcome");
  if (Out == M.end() || !parseJobOutcome(Out->second, R.Outcome))
    return Fail("bad 'outcome'");
  if (!getInt(M, "exit", V))
    return Fail("bad 'exit'");
  R.ExitCode = static_cast<int>(V);
  if (!getInt(M, "signal", V))
    return Fail("bad 'signal'");
  R.Signal = static_cast<int>(V);
  if (!getUInt(M, "wall_ms", R.WallMs))
    return Fail("bad 'wall_ms'");
  if (!getUInt(M, "cpu_ms", R.CpuMs))
    return Fail("bad 'cpu_ms'");
  if (!getUInt(M, "peak_rss_kb", R.PeakRSSKB))
    return Fail("bad 'peak_rss_kb'");
  if (!getUInt(M, "minflt", R.MinFlt))
    return Fail("bad 'minflt'");
  if (!getUInt(M, "majflt", R.MajFlt))
    return Fail("bad 'majflt'");
  if (!getUInt(M, "backoff_ms", R.BackoffMs))
    return Fail("bad 'backoff_ms'");
  auto Fin = M.find("final");
  if (Fin == M.end() || (Fin->second != "true" && Fin->second != "false"))
    return Fail("bad 'final'");
  R.Final = Fin->second == "true";
  R.HasResult = getInt(M, "result", V);
  R.Result = R.HasResult ? V : 0;
  R.HasOracleMetrics = getUInt(M, "oracle_queries", R.OracleQueries);
  if (R.HasOracleMetrics) {
    if (!getUInt(M, "oracle_p50_ns", R.OracleP50Ns) ||
        !getUInt(M, "oracle_p90_ns", R.OracleP90Ns) ||
        !getUInt(M, "oracle_max_ns", R.OracleMaxNs))
      return Fail("incomplete oracle_* summary");
  }
  return true;
}

} // namespace

bool Journal::load(const std::string &Path, std::vector<JournalRecord> &Out,
                   std::string &Error) {
  Out.clear();
  Error.clear();
  struct stat St{};
  if (::stat(Path.c_str(), &St) != 0)
    return true; // no journal yet: empty, not an error
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::map<std::string, std::string> M;
    JournalRecord R;
    std::string Why;
    if (!parseFlatJSONObject(Line, M)) {
      std::ostringstream SS;
      SS << Path << ":" << LineNo << ": malformed JSON line";
      Error = SS.str();
      return false;
    }
    if (!recordFromMap(M, R, Why)) {
      std::ostringstream SS;
      SS << Path << ":" << LineNo << ": " << Why;
      Error = SS.str();
      return false;
    }
    Out.push_back(std::move(R));
  }
  return true;
}

std::set<std::string>
Journal::finishedJobs(const std::vector<JournalRecord> &Records) {
  std::set<std::string> Done;
  for (const JournalRecord &R : Records)
    if (R.Final)
      Done.insert(R.Job);
  return Done;
}
