//===- Sandbox.cpp --------------------------------------------------------===//

#include "service/Sandbox.h"

#include "support/SafeIO.h"
#include "support/Timing.h"

#include <algorithm>
#include <cerrno>

#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

using namespace tbaa;

namespace {

/// Crash-record pipe, valid only inside a worker child.
int CrashFdG = -1;

/// Translates a fatal signal into one structured JSON line on the crash
/// pipe, then re-raises with default disposition. Async-signal-safe
/// throughout (SafeIO; phaseCStr is a pre-rendered buffer).
void crashHandler(int Sig) {
  if (CrashFdG >= 0) {
    safeio::LineBuf B;
    B.append("{\"signal\":").appendInt(Sig);
    B.append(",\"name\":\"").append(sandbox::signalShortName(Sig));
    B.append("\",\"phase\":\"");
    B.appendJSONEscaped(TimerRegistry::instance().phaseCStr());
    B.append("\"}\n");
    B.writeTo(CrashFdG);
  }
  ::signal(Sig, SIG_DFL);
  ::raise(Sig);
}

} // namespace

const char *sandbox::signalShortName(int Sig) {
  switch (Sig) {
  case SIGSEGV:
    return "SIGSEGV";
  case SIGBUS:
    return "SIGBUS";
  case SIGILL:
    return "SIGILL";
  case SIGFPE:
    return "SIGFPE";
  case SIGABRT:
    return "SIGABRT";
  case SIGXCPU:
    return "SIGXCPU";
  case SIGKILL:
    return "SIGKILL";
  default:
    return "SIG?";
  }
}

void sandbox::installCrashHandlers(int CrashFd) {
  CrashFdG = CrashFd;
  // First-touch outside handler context: instance() lazily constructs.
  (void)TimerRegistry::instance().phaseCStr();
  // An alternate stack so even a stack-overflow SIGSEGV gets recorded.
  static char AltStack[64 * 1024];
  stack_t SS{};
  SS.ss_sp = AltStack;
  SS.ss_size = sizeof(AltStack);
  ::sigaltstack(&SS, nullptr);

  struct sigaction SA;
  SA.sa_handler = crashHandler;
  ::sigemptyset(&SA.sa_mask);
  SA.sa_flags = SA_ONSTACK;
  for (int Sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT, SIGXCPU})
    ::sigaction(Sig, &SA, nullptr);
}

void sandbox::applyLimits(const WorkerLimits &L) {
  if (L.CpuSeconds) {
    // Soft cap delivers SIGXCPU (recorded by the handler); the hard cap
    // two seconds later is the kernel's backstop if that wedges.
    rlimit R{L.CpuSeconds, L.CpuSeconds + 2};
    ::setrlimit(RLIMIT_CPU, &R);
  }
  if (L.MemoryMB && !TBAA_ASAN_BUILD) {
    rlimit R{L.MemoryMB << 20, L.MemoryMB << 20};
    ::setrlimit(RLIMIT_AS, &R);
  }
  // Workers crash on purpose in tests and by accident in batches; no
  // core dumps either way.
  rlimit Core{0, 0};
  ::setrlimit(RLIMIT_CORE, &Core);
}

void sandbox::reapplyCpuLimit(uint64_t CpuSeconds) {
  if (!CpuSeconds)
    return;
  rusage RU{};
  ::getrusage(RUSAGE_SELF, &RU);
  // Round the spent CPU up so the allowance is never short-changed by
  // a sub-second remainder.
  uint64_t UsedSec = static_cast<uint64_t>(RU.ru_utime.tv_sec) +
                     static_cast<uint64_t>(RU.ru_stime.tv_sec) + 1;
  rlimit R{UsedSec + CpuSeconds, UsedSec + CpuSeconds + 2};
  ::setrlimit(RLIMIT_CPU, &R);
}

bool sandbox::drainFd(int &Fd, std::string &Into, size_t Cap) {
  if (Fd < 0)
    return false;
  char Buf[4096];
  while (true) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N > 0) {
      if (Into.size() < Cap)
        Into.append(Buf, std::min(static_cast<size_t>(N), Cap - Into.size()));
      continue;
    }
    if (N == 0) {
      ::close(Fd);
      Fd = -1;
      return false;
    }
    if (errno == EINTR)
      continue;
    return true; // EAGAIN: writer still alive
  }
}
