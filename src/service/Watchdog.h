//===- Watchdog.h - Monotonic deadline registry for workers -----*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks one monotonic deadline per live worker pid. The pool's poll
/// loop asks expired() each iteration and SIGKILLs what comes back --
/// SIGKILL, not SIGTERM, because a worker hung in a tight loop masks
/// nothing but also handles nothing, and a worker hung in a signal
/// handler must not be trusted to unwind. Monotonic time (support/
/// Clock.h) so a wall-clock step can neither fire a fresh worker nor
/// keep a hung one alive.
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_SERVICE_WATCHDOG_H
#define TBAA_SERVICE_WATCHDOG_H

#include "support/Clock.h"

#include <cstdint>
#include <vector>

namespace tbaa {

class Watchdog {
public:
  /// Starts watching \p Pid against \p D. A disarmed deadline (never())
  /// is legal: the pid is tracked but can only leave via disarm().
  void arm(int Pid, Deadline D);

  /// Stops watching \p Pid (worker reaped). Unknown pids are ignored.
  void disarm(int Pid);

  /// Pids whose deadline has passed at \p NowMs. They stay armed until
  /// disarm() -- the caller kills, reaps, then disarms, and a pid must
  /// not vanish from the registry between those steps.
  std::vector<int> expired(uint64_t NowMs) const;

  /// The earliest armed deadline, or 0 when none is armed -- the poll
  /// loop's sleep bound.
  uint64_t nextDeadlineMs() const;

  size_t watched() const { return Entries.size(); }

private:
  struct Entry {
    int Pid;
    Deadline D;
  };
  std::vector<Entry> Entries;
};

} // namespace tbaa

#endif // TBAA_SERVICE_WATCHDOG_H
