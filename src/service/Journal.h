//===- Journal.h - Append-only JSONL batch journal --------------*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch service's durable memory: one JSON object per line, one
/// line per worker attempt, appended as each attempt completes so an
/// interrupted batch (crash, ctrl-C, power) resumes exactly where it
/// stopped. A job is *finished* once any of its lines carries
/// "final": true; `m3batch --resume` re-runs only the jobs without one.
/// Schema (validated by tools/check_journal_json.py and documented in
/// docs/ROBUSTNESS.md):
///
///   {"job":"format","attempt":1,"degrade":"full","outcome":"ok",
///    "exit":0,"signal":0,"wall_ms":12,"cpu_ms":9,"peak_rss_kb":4096,
///    "minflt":350,"majflt":0,"backoff_ms":0,"final":true,
///    "result":271828,"oracle_queries":118,"oracle_p50_ns":255,
///    "oracle_p90_ns":1023,"oracle_max_ns":9000,"crc":1234567}
///
/// minflt/majflt are the worker's rusage fault counts (recorded for
/// successes as much as crashes). The oracle_* keys are the per-job
/// latency-histogram summary a compile worker reports in its payload;
/// they are optional -- planted fault jobs have no oracle to measure.
/// "quarantined":true marks a daemon job that exhausted the whole
/// precision ladder killing workers (see Serve.h).
///
/// Durability is explicit, not assumed:
///
///  * Appends go through an O_APPEND fd and safeio/fault::writeAll --
///    no stdio buffer to lose on _exit, and the `journal.append` /
///    `journal.fsync` fault points sit directly on the write path.
///  * "crc" is always the record's last key: CRC-32 (zlib variant, see
///    support/CRC32.h) of the line as serialized *without* the crc
///    member. Records without a crc (older journals, hand-written
///    fixtures) stay loadable.
///  * append() returns false -- and latches the journal broken, so a
///    torn line is never appended onto -- when a write or fsync fails;
///    drivers surface that instead of reporting success over lost
///    records.
///  * load() with RepairTail truncates a torn or CRC-failing *final*
///    line (counted as journal.repaired-tail, warned on stderr): the
///    expected scar of a mid-append kill. A malformed *interior* line
///    stays a hard error -- that is corruption, not a crash artifact.
///
/// The loader's flat-object parser is deliberately minimal (strings,
/// integers, bools; no nesting) -- exactly the shape the appender emits,
/// and a malformed line is a hard load error, never a guess.
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_SERVICE_JOURNAL_H
#define TBAA_SERVICE_JOURNAL_H

#include "service/Retry.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace tbaa {

struct JournalRecord {
  std::string Job;
  unsigned Attempt = 1;
  DegradeLevel Level = DegradeLevel::Full;
  JobOutcome Outcome = JobOutcome::Ok;
  int ExitCode = 0;
  int Signal = 0;
  uint64_t WallMs = 0;
  uint64_t CpuMs = 0;
  uint64_t PeakRSSKB = 0;
  uint64_t MinFlt = 0; ///< rusage minor faults for the attempt.
  uint64_t MajFlt = 0; ///< rusage major faults for the attempt.
  /// Delay scheduled before the next attempt; 0 on final records.
  uint64_t BackoffMs = 0;
  /// True when this attempt settles the job (success, deterministic
  /// rejection, or ladder exhausted).
  bool Final = false;
  /// True on a final record of a daemon job that stayed retryable at
  /// the bottom of the ladder -- a poison job the daemon quarantines.
  bool Quarantined = false;
  /// Main()'s checksum when the worker reported one.
  int64_t Result = 0;
  bool HasResult = false;
  /// Per-job oracle latency summary (oracle.query-ns histogram inside
  /// the worker), copied from the payload when the worker reported one.
  bool HasOracleMetrics = false;
  uint64_t OracleQueries = 0;
  uint64_t OracleP50Ns = 0;
  uint64_t OracleP90Ns = 0;
  uint64_t OracleMaxNs = 0;
  /// Per-job partition-cache tallies (engine.partition-cache-{hit,miss}
  /// deltas), present when the worker ran with --partition-cache on.
  bool HasPcacheMetrics = false;
  uint64_t PcacheHits = 0;
  uint64_t PcacheMisses = 0;

  /// One line, no trailing newline; "crc" is always the last key.
  std::string toJSONLine() const;
};

/// Append side. Each record is one write to an O_APPEND fd, so the
/// journal is valid JSONL after a kill at any point -- except the one
/// torn line a mid-write kill leaves, which load() repairs.
class Journal {
public:
  Journal() = default;
  ~Journal();
  Journal(const Journal &) = delete;
  Journal &operator=(const Journal &) = delete;

  /// Opens for append (\p Truncate starts a fresh batch instead).
  /// \p FsyncEachRecord trades append latency for power-loss
  /// durability: fsync after every record (--journal-fsync).
  bool open(const std::string &Path, bool Truncate,
            bool FsyncEachRecord = false);
  bool isOpen() const { return Fd >= 0; }

  /// Appends one record. Returns false when the write (or fsync)
  /// failed; the journal latches broken and drops later appends, so a
  /// torn tail is never buried under further records. An unopened
  /// journal (journaling disabled) accepts appends as no-ops.
  bool append(const JournalRecord &R);

  /// True once an append failed; lastError() says how.
  bool broken() const { return Broken; }
  const std::string &lastError() const { return LastError; }

  /// Loads every record of a JSONL journal. A missing file is an empty
  /// journal, not an error (first run with --resume). On a malformed or
  /// CRC-failing line the load fails with a message naming the line --
  /// unless it is the *final* line and \p RepairTail is set, in which
  /// case the file is truncated at that line (the torn tail of a killed
  /// append), a warning naming it goes to stderr and \p RepairNote (if
  /// given), and the load succeeds with the intact prefix.
  static bool load(const std::string &Path, std::vector<JournalRecord> &Out,
                   std::string &Error, bool RepairTail = false,
                   std::string *RepairNote = nullptr);

  /// Atomically rewrites \p Path to exactly \p Keep (tmp + fsync +
  /// rename). Resume uses it to drop the stale non-final attempts of
  /// jobs it is about to re-run from scratch.
  static bool compact(const std::string &Path,
                      const std::vector<JournalRecord> &Keep,
                      std::string &Error);

  /// The jobs settled by a final record -- what --resume skips.
  static std::set<std::string>
  finishedJobs(const std::vector<JournalRecord> &Records);

private:
  int Fd = -1;
  bool FsyncEach = false;
  bool Broken = false;
  std::string LastError;
};

/// Parses one flat JSON object ({"k":"v","n":12,"b":true}) into raw
/// key/value text: string values are unescaped, numbers and booleans
/// returned verbatim. Nested objects/arrays are rejected. Exposed for
/// tests and for picking results out of worker payloads.
bool parseFlatJSONObject(const std::string &Line,
                         std::map<std::string, std::string> &Out);

} // namespace tbaa

#endif // TBAA_SERVICE_JOURNAL_H
