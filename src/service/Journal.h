//===- Journal.h - Append-only JSONL batch journal --------------*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch service's durable memory: one JSON object per line, one
/// line per worker attempt, appended and flushed as each attempt
/// completes so an interrupted batch (crash, ctrl-C, power) resumes
/// exactly where it stopped. A job is *finished* once any of its lines
/// carries "final": true; `m3batch --resume` re-runs only the jobs
/// without one. Schema (validated by tools/check_journal_json.py and
/// documented in docs/ROBUSTNESS.md):
///
///   {"job":"format","attempt":1,"degrade":"full","outcome":"ok",
///    "exit":0,"signal":0,"wall_ms":12,"cpu_ms":9,"peak_rss_kb":4096,
///    "minflt":350,"majflt":0,"backoff_ms":0,"final":true,
///    "result":271828,"oracle_queries":118,"oracle_p50_ns":255,
///    "oracle_p90_ns":1023,"oracle_max_ns":9000}
///
/// minflt/majflt are the worker's rusage fault counts (recorded for
/// successes as much as crashes). The oracle_* keys are the per-job
/// latency-histogram summary a compile worker reports in its payload;
/// they are optional -- planted fault jobs have no oracle to measure.
///
/// The loader's flat-object parser is deliberately minimal (strings,
/// integers, bools; no nesting) -- exactly the shape the appender emits,
/// and a malformed line is a hard load error, never a guess.
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_SERVICE_JOURNAL_H
#define TBAA_SERVICE_JOURNAL_H

#include "service/Retry.h"

#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace tbaa {

struct JournalRecord {
  std::string Job;
  unsigned Attempt = 1;
  DegradeLevel Level = DegradeLevel::Full;
  JobOutcome Outcome = JobOutcome::Ok;
  int ExitCode = 0;
  int Signal = 0;
  uint64_t WallMs = 0;
  uint64_t CpuMs = 0;
  uint64_t PeakRSSKB = 0;
  uint64_t MinFlt = 0; ///< rusage minor faults for the attempt.
  uint64_t MajFlt = 0; ///< rusage major faults for the attempt.
  /// Delay scheduled before the next attempt; 0 on final records.
  uint64_t BackoffMs = 0;
  /// True when this attempt settles the job (success, deterministic
  /// rejection, or ladder exhausted).
  bool Final = false;
  /// Main()'s checksum when the worker reported one.
  int64_t Result = 0;
  bool HasResult = false;
  /// Per-job oracle latency summary (oracle.query-ns histogram inside
  /// the worker), copied from the payload when the worker reported one.
  bool HasOracleMetrics = false;
  uint64_t OracleQueries = 0;
  uint64_t OracleP50Ns = 0;
  uint64_t OracleP90Ns = 0;
  uint64_t OracleMaxNs = 0;

  std::string toJSONLine() const; ///< One line, no trailing newline.
};

/// Append side. Writes are line-buffered and flushed per record so the
/// journal is valid JSONL after a kill at any point.
class Journal {
public:
  Journal() = default;
  ~Journal();
  Journal(const Journal &) = delete;
  Journal &operator=(const Journal &) = delete;

  /// Opens for append (\p Truncate starts a fresh batch instead).
  bool open(const std::string &Path, bool Truncate);
  bool isOpen() const { return File != nullptr; }
  void append(const JournalRecord &R);

  /// Loads every record of a JSONL journal. On any malformed line the
  /// load fails with a message naming the line. A missing file is an
  /// empty journal, not an error (first run with --resume).
  static bool load(const std::string &Path, std::vector<JournalRecord> &Out,
                   std::string &Error);

  /// The jobs settled by a final record -- what --resume skips.
  static std::set<std::string>
  finishedJobs(const std::vector<JournalRecord> &Records);

private:
  std::FILE *File = nullptr;
};

/// Parses one flat JSON object ({"k":"v","n":12,"b":true}) into raw
/// key/value text: string values are unescaped, numbers and booleans
/// returned verbatim. Nested objects/arrays are rejected. Exposed for
/// tests and for picking results out of worker payloads.
bool parseFlatJSONObject(const std::string &Line,
                         std::map<std::string, std::string> &Out);

} // namespace tbaa

#endif // TBAA_SERVICE_JOURNAL_H
