//===- Worker.h - Fork-isolated job execution -------------------*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-isolation primitive of the batch service: run a job in a
/// forked child so that a SIGSEGV, a runaway allocation, a hot infinite
/// loop or an escaped exception takes down *one worker*, never the
/// batch. The child gets rlimit CPU/memory caps, signal handlers that
/// translate SIGSEGV/SIGABRT/SIGXCPU & co. into a structured crash
/// record on a dedicated pipe (then re-raise, so the parent still sees
/// the true termination signal), and its stdout/stderr captured.
///
/// Worker protocol (docs/ROBUSTNESS.md): the job function returns the
/// m3lc exit-code contract -- 0 success, 1 rejected/trapped, 2 usage,
/// 3 internal error -- and may write machine-readable results to the
/// payload pipe. Anything else the parent learns from waitpid: a signal
/// (crash), or a watchdog kill (hung past its wall deadline).
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_SERVICE_WORKER_H
#define TBAA_SERVICE_WORKER_H

#include <cstdint>
#include <functional>
#include <string>

namespace tbaa {

/// Sandbox caps for one worker. 0 always means "no limit".
struct WorkerLimits {
  /// Wall-clock deadline enforced by the parent's watchdog (SIGKILL).
  uint64_t WallMs = 0;
  /// RLIMIT_CPU soft cap; the worker gets SIGXCPU (recorded, fatal),
  /// with a hard cap 2s later as the kernel's backstop.
  uint64_t CpuSeconds = 0;
  /// RLIMIT_AS in MiB. Ignored in sanitizer builds, where the shadow
  /// mapping makes any realistic address-space cap a lie.
  uint64_t MemoryMB = 0;
};

/// How a worker ended.
enum class WorkerStatus : uint8_t {
  Exited,   ///< Normal _exit; ExitCode is the job's return.
  Signaled, ///< Killed by a signal (Signal set; CrashRecord if our
            ///< handler got to run).
  TimedOut, ///< SIGKILLed by the watchdog past WallMs.
};

const char *workerStatusName(WorkerStatus S);

/// Everything the parent learns about one worker run.
struct WorkerResult {
  WorkerStatus Status = WorkerStatus::Exited;
  int ExitCode = -1;
  int Signal = 0;
  uint64_t WallMs = 0;       ///< Spawn-to-reap wall time.
  uint64_t CpuMs = 0;        ///< rusage user+system.
  uint64_t PeakRSSKB = 0;    ///< rusage ru_maxrss.
  uint64_t MinorFaults = 0;  ///< rusage ru_minflt.
  uint64_t MajorFaults = 0;  ///< rusage ru_majflt.
  std::string Payload;     ///< Bytes the job wrote to the payload fd.
  std::string CrashRecord; ///< Crash handler's JSON line, if any.
  std::string Output;      ///< Captured stdout+stderr (capped).
};

/// A job body, run inside the forked child. \p PayloadFd is an open
/// pipe back to the parent for structured results. The return value is
/// the worker's exit code (m3lc contract). Escaped exceptions become
/// exit code 3.
using WorkerFn = std::function<int(int PayloadFd)>;

/// Runs one job to completion in a sandboxed worker (blocking). The
/// single-job face of WorkerPool; m3fuzz uses it to put every fuzz
/// candidate under a wall-clock deadline.
WorkerResult runInWorker(const WorkerFn &Fn, const WorkerLimits &Limits);

} // namespace tbaa

#endif // TBAA_SERVICE_WORKER_H
