//===- Worker.cpp ---------------------------------------------------------===//

#include "service/Worker.h"

#include "service/WorkerPool.h"

using namespace tbaa;

const char *tbaa::workerStatusName(WorkerStatus S) {
  switch (S) {
  case WorkerStatus::Exited:
    return "exited";
  case WorkerStatus::Signaled:
    return "signaled";
  case WorkerStatus::TimedOut:
    return "timed-out";
  }
  return "?";
}

WorkerResult tbaa::runInWorker(const WorkerFn &Fn, const WorkerLimits &Limits) {
  WorkerPool Pool(1);
  WorkerResult Out;
  Pool.enqueue({/*Key=*/0, Fn, Limits, /*NotBeforeMs=*/0});
  Pool.run([&](uint64_t, const WorkerResult &R) { Out = R; });
  return Out;
}
