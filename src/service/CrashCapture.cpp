//===- CrashCapture.cpp ---------------------------------------------------===//

#include "service/CrashCapture.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace tbaa;

std::string tbaa::writeCrashBundle(const std::string &OutDir,
                                   const JournalRecord &R,
                                   const std::string &Source,
                                   const WorkerResult &W,
                                   const std::string &RerunCmd) {
  std::filesystem::path Dir =
      std::filesystem::path(OutDir) /
      (R.Job + "-a" + std::to_string(R.Attempt));
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return "";

  {
    std::ofstream In(Dir / "input.m3l");
    if (!In)
      return "";
    In << Source;
  }

  // The frozen phase, if the crash handler got to record one.
  std::string Phase = "<none>";
  std::map<std::string, std::string> Crash;
  if (!W.CrashRecord.empty() && parseFlatJSONObject(W.CrashRecord, Crash)) {
    auto It = Crash.find("phase");
    if (It != Crash.end() && !It->second.empty())
      Phase = It->second;
  }

  std::ostringstream Report;
  Report << "job:       " << R.Job << "\n"
         << "attempt:   " << R.Attempt << " (degrade level "
         << degradeLevelName(R.Level) << ")\n"
         << "outcome:   " << jobOutcomeName(R.Outcome) << "\n"
         << "status:    " << workerStatusName(W.Status) << "\n"
         << "exit:      " << W.ExitCode << "\n"
         << "signal:    " << W.Signal
         << (W.Signal ? std::string(" (") + strsignal(W.Signal) + ")" : "")
         << "\n"
         << "phase:     " << Phase << "\n"
         << "wall:      " << W.WallMs << " ms\n"
         << "cpu:       " << W.CpuMs << " ms\n"
         << "peak rss:  " << W.PeakRSSKB << " KB\n"
         << "rerun:     " << (RerunCmd.empty() ? "<none>" : RerunCmd) << "\n";
  if (!W.CrashRecord.empty())
    Report << "\ncrash record:\n" << W.CrashRecord;
  if (!W.Output.empty())
    Report << "\ncaptured output:\n" << W.Output;
  std::ofstream Out(Dir / "report.txt");
  if (!Out)
    return "";
  Out << Report.str();
  return Dir.string();
}
