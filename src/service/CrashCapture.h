//===- CrashCapture.h - Triage bundles for failed workers -------*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// When a worker crashes, hangs or dies with an internal error, the
/// batch writes a triage bundle -- the same shape m3fuzz produces, so
/// the existing reduce/triage flow picks it straight up:
///
///   <dir>/<job>-a<attempt>/input.m3l    the job's source
///   <dir>/<job>-a<attempt>/report.txt   outcome, signal, frozen phase,
///                                       resource use, rerun command,
///                                       raw crash record, captured
///                                       worker output
///
/// The frozen phase comes from the worker's crash record (the signal
/// handler snapshots TimerRegistry::phaseCStr()), so even a SIGSEGV
/// names the pass that was running.
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_SERVICE_CRASHCAPTURE_H
#define TBAA_SERVICE_CRASHCAPTURE_H

#include "service/Journal.h"
#include "service/Worker.h"

#include <string>

namespace tbaa {

/// Writes the bundle for \p R under \p OutDir. \p Source is the job's
/// input text and \p RerunCmd a copy-pasteable reproduction command
/// (may be empty). Returns the bundle directory, or "" on I/O failure.
std::string writeCrashBundle(const std::string &OutDir,
                             const JournalRecord &R, const std::string &Source,
                             const WorkerResult &W,
                             const std::string &RerunCmd);

} // namespace tbaa

#endif // TBAA_SERVICE_CRASHCAPTURE_H
