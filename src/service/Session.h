//===- Session.h - One m3serve client connection ----------------*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-client state of the compile daemon: the connection fd, the JSONL
/// request reader, a nonblocking outbound buffer, and the fair-queue
/// accounting the admission controller charges against. A session never
/// owns jobs -- the daemon does -- it owns the *counts* (queued,
/// in-flight) that bound one client's share of the service and make
/// round-robin dispatch fair across clients.
///
/// Disconnect semantics (docs/ROBUSTNESS.md): when the peer closes or
/// errors, pump()/flushOut() report it and the daemon decides -- queued
/// jobs are cancelled (never started, nothing lost), in-flight jobs are
/// orphaned (they finish and reach the journal; only the response is
/// dropped). Writes use MSG_NOSIGNAL so a vanished client can never
/// SIGPIPE the daemon.
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_SERVICE_SESSION_H
#define TBAA_SERVICE_SESSION_H

#include "support/Socket.h"

#include <cstdint>
#include <string>

namespace tbaa {

class Session {
public:
  /// Takes ownership of \p Fd (nonblocking).
  Session(uint64_t Id, int Fd);
  ~Session();
  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  uint64_t id() const { return Id; }
  int fd() const { return Fd; }

  /// Drains the socket into the request reader. Returns false when the
  /// connection is finished (peer EOF after all buffered requests are
  /// consumed, a read error, or an over-cap request line) -- the caller
  /// should process remaining requests via nextRequest() first when
  /// half-closed, then disconnect.
  bool pump();

  /// True once the peer has EOFed or errored; buffered complete
  /// requests may still be pending.
  bool finished() const { return Finished; }
  /// True when the client sent an over-long line; the framing is gone
  /// and the connection must be dropped without parsing further.
  bool poisoned() const { return Poisoned; }

  /// Pops the next complete request line.
  bool nextRequest(std::string &Line) { return Reader.next(Line); }

  /// Queues \p Line (newline appended) and attempts an immediate
  /// nonblocking flush.
  void send(const std::string &Line);

  /// Pushes buffered output. Returns false on a write error (peer
  /// gone); EAGAIN simply leaves the rest for the next POLLOUT.
  bool flushOut();
  bool wantsWrite() const { return !OutBuf.empty(); }

  // --- Fair-share accounting, charged by the daemon. ---
  unsigned queued() const { return Queued; }
  unsigned inFlight() const { return InFlight; }
  void noteQueued() { ++Queued; }
  void noteDequeued() { --Queued; }
  void noteStarted() { ++InFlight; }
  void noteSettled() { --InFlight; }

private:
  uint64_t Id;
  int Fd;
  net::LineReader Reader;
  std::string OutBuf;
  size_t OutPos = 0;
  bool Finished = false;
  bool Poisoned = false;
  unsigned Queued = 0;
  unsigned InFlight = 0;
};

} // namespace tbaa

#endif // TBAA_SERVICE_SESSION_H
