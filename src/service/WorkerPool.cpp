//===- WorkerPool.cpp -----------------------------------------------------===//

#include "service/WorkerPool.h"

#include "service/Sandbox.h"
#include "support/FaultInjector.h"
#include "support/Metrics.h"
#include "support/Socket.h"
#include "support/Timing.h"
#include "support/Trace.h"

#include <algorithm>

#include <cstdio>
#include <exception>
#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace tbaa;

TBAA_HISTOGRAM(QueueWaitMs, "batch", "queue-wait-ms",
               "Time a ready item waited for a free worker slot", "ms");

namespace {

uint64_t timevalMs(const timeval &TV) {
  return static_cast<uint64_t>(TV.tv_sec) * 1000u +
         static_cast<uint64_t>(TV.tv_usec) / 1000u;
}

} // namespace

WorkerPool::WorkerPool(unsigned Parallelism) : P(Parallelism ? Parallelism : 1) {}

WorkerPool::~WorkerPool() {
  for (Live &W : Workers) {
    ::kill(W.Pid, SIGKILL);
    int St = 0;
    ::waitpid(W.Pid, &St, 0);
    for (int *Fd : {&W.PayloadFd, &W.CrashFd, &W.OutFd})
      if (*Fd >= 0)
        ::close(*Fd);
  }
}

void WorkerPool::enqueue(Item I) {
  if (!I.EnqueuedMs)
    I.EnqueuedMs = monoNowMs();
  Queue.push_back(std::move(I));
}

bool WorkerPool::spawn(const Item &I) {
  const uint64_t ForkT0Us = trace::nowUs();
  if (I.EnqueuedMs) {
    // Wait from ready-to-run (enqueue, or the backoff deadline) to the
    // moment a slot freed up -- scheduler pressure, not backoff policy.
    uint64_t Ready = std::max(I.EnqueuedMs, I.NotBeforeMs);
    uint64_t Now = monoNowMs();
    QueueWaitMs.record(Now > Ready ? Now - Ready : 0);
  }
  {
    // Injected fork failure (EAGAIN: process table full). The caller
    // already degrades a false return into a per-job internal error
    // that walks the retry ladder -- exactly the path this drills.
    fault::Action A = fault::at("pool.fork");
    if (A == fault::Action::Kill)
      fault::killSelf();
    if (A != fault::Action::None && A != fault::Action::Eintr) {
      errno = A == fault::Action::Eagain ? EAGAIN : ENOMEM;
      return false;
    }
  }
  int PayloadP[2] = {-1, -1}, CrashP[2] = {-1, -1}, OutP[2] = {-1, -1};
  auto CloseAll = [&] {
    for (int Fd : {PayloadP[0], PayloadP[1], CrashP[0], CrashP[1], OutP[0],
                   OutP[1]})
      if (Fd >= 0)
        ::close(Fd);
  };
  if (::pipe(PayloadP) || ::pipe(CrashP) || ::pipe(OutP)) {
    CloseAll();
    return false;
  }

  // Pending stdio would otherwise be flushed twice, once per process.
  std::fflush(stdout);
  std::fflush(stderr);
  pid_t Pid = ::fork();
  if (Pid < 0) {
    CloseAll();
    return false;
  }

  if (Pid == 0) {
    // --- Worker child. Only _exit() leaves this block. ---
    ::close(PayloadP[0]);
    ::close(CrashP[0]);
    ::close(OutP[0]);
    // Sibling workers' pipe ends die here so their EOFs stay crisp.
    for (const Live &W : Workers)
      for (int Fd : {W.PayloadFd, W.CrashFd, W.OutFd})
        if (Fd >= 0)
          ::close(Fd);
    ::dup2(OutP[1], STDOUT_FILENO);
    ::dup2(OutP[1], STDERR_FILENO);
    ::close(OutP[1]);
    sandbox::applyLimits(I.Limits);
    sandbox::installCrashHandlers(CrashP[1]);
    int RC = 3;
    try {
      RC = I.Fn(PayloadP[1]);
    } catch (const std::exception &E) {
      std::fprintf(stderr, "worker: unhandled exception: %s\n", E.what());
    } catch (...) {
      std::fprintf(stderr, "worker: unhandled exception\n");
    }
    std::fflush(stdout);
    std::fflush(stderr);
    ::_exit(RC & 0xff);
  }

  // --- Parent. ---
  ::close(PayloadP[1]);
  ::close(CrashP[1]);
  ::close(OutP[1]);
  for (int Fd : {PayloadP[0], CrashP[0], OutP[0]})
    net::setNonBlocking(Fd);
  Live W;
  W.Key = I.Key;
  W.Pid = Pid;
  W.PayloadFd = PayloadP[0];
  W.CrashFd = CrashP[0];
  W.OutFd = OutP[0];
  W.StartMs = monoNowMs();
  Dog.arm(Pid, I.Limits.WallMs ? Deadline::in(I.Limits.WallMs)
                               : Deadline::never());
  Workers.push_back(std::move(W));
  TraceRecorder &TR = TraceRecorder::instance();
  if (TR.enabled())
    TR.complete("service", "fork", ForkT0Us, trace::nowUs() - ForkT0Us,
                TraceArgs()
                    .num("key", I.Key)
                    .num("pid", static_cast<int64_t>(Pid))
                    .render());
  return true;
}

void WorkerPool::drainPipes(Live &W) {
  sandbox::drainFd(W.PayloadFd, W.R.Payload, sandbox::MaxCapturedOutput);
  sandbox::drainFd(W.CrashFd, W.R.CrashRecord, sandbox::MaxCapturedOutput);
  sandbox::drainFd(W.OutFd, W.R.Output, sandbox::MaxCapturedOutput);
}

void WorkerPool::killExpired(uint64_t NowMs) {
  for (int Pid : Dog.expired(NowMs))
    for (Live &W : Workers)
      if (W.Pid == Pid && !W.TimedOut) {
        W.TimedOut = true;
        ::kill(Pid, SIGKILL);
        TraceRecorder &TR = TraceRecorder::instance();
        if (TR.enabled())
          TR.instant("service", "watchdog-kill",
                     TraceArgs()
                         .num("key", W.Key)
                         .num("pid", static_cast<int64_t>(Pid))
                         .num("wall_ms", NowMs - W.StartMs)
                         .render());
      }
}

std::vector<WorkerPool::Live> WorkerPool::reap(bool Block) {
  std::vector<Live> Done;
  for (size_t I = 0; I < Workers.size();) {
    Live &W = Workers[I];
    int St = 0;
    rusage RU{};
    pid_t R = ::wait4(W.Pid, &St, Block && Done.empty() ? 0 : WNOHANG, &RU);
    if (R == 0) {
      ++I;
      continue;
    }
    // The child is gone, so every write end is closed: drain to EOF.
    while (drainPipes(W), W.PayloadFd >= 0 || W.CrashFd >= 0 || W.OutFd >= 0)
      ::usleep(100);
    W.R.WallMs = monoNowMs() - W.StartMs;
    if (R < 0) {
      W.R.Status = WorkerStatus::Exited; // lost child: internal error
      W.R.ExitCode = -1;
    } else if (WIFEXITED(St)) {
      W.R.Status = WorkerStatus::Exited;
      W.R.ExitCode = WEXITSTATUS(St);
    } else {
      W.R.Signal = WIFSIGNALED(St) ? WTERMSIG(St) : 0;
      W.R.Status = W.TimedOut ? WorkerStatus::TimedOut : WorkerStatus::Signaled;
    }
    W.R.CpuMs = timevalMs(RU.ru_utime) + timevalMs(RU.ru_stime);
    W.R.PeakRSSKB = static_cast<uint64_t>(RU.ru_maxrss);
    W.R.MinorFaults = static_cast<uint64_t>(RU.ru_minflt);
    W.R.MajorFaults = static_cast<uint64_t>(RU.ru_majflt);
    Dog.disarm(W.Pid);
    Done.push_back(std::move(W));
    Workers.erase(Workers.begin() + static_cast<long>(I));
  }
  return Done;
}

void WorkerPool::run(const DoneFn &OnDone) {
  while (!Queue.empty() || !Workers.empty()) {
    uint64_t Now = monoNowMs();
    bool Progress = false;
    for (size_t QI = 0; Workers.size() < P && QI < Queue.size();) {
      if (Queue[QI].NotBeforeMs <= Now) {
        Item I = std::move(Queue[QI]);
        Queue.erase(Queue.begin() + static_cast<long>(QI));
        if (spawn(I)) {
          Progress = true;
        } else {
          WorkerResult R;
          R.Status = WorkerStatus::Exited;
          R.ExitCode = 3;
          R.Output = "workerpool: fork/pipe failed\n";
          OnDone(I.Key, R);
          Progress = true;
        }
      } else {
        ++QI;
      }
    }
    for (Live &W : Workers)
      drainPipes(W);
    {
      // The poll loop spins at ~1kHz; trace it at <=20Hz so the merged
      // timeline shows watchdog liveness without drowning in instants.
      TraceRecorder &TR = TraceRecorder::instance();
      if (TR.enabled() && !Workers.empty() && Now - LastPollTraceMs >= 50) {
        LastPollTraceMs = Now;
        TR.instant("service", "watchdog-poll",
                   TraceArgs()
                       .num("live", static_cast<uint64_t>(Workers.size()))
                       .num("queued", static_cast<uint64_t>(Queue.size()))
                       .render());
        TR.counter("service", "live-workers",
                   static_cast<uint64_t>(Workers.size()));
        TR.counter("service", "queue-depth",
                   static_cast<uint64_t>(Queue.size()));
      }
    }
    killExpired(monoNowMs());
    for (Live &W : reap(/*Block=*/false)) {
      OnDone(W.Key, W.R);
      Progress = true;
    }
    if (!Progress)
      ::usleep(1000);
  }
}
