//===- AliasSoundness.cpp -------------------------------------------------===//

#include "limit/AliasSoundness.h"

#include <sstream>

using namespace tbaa;

AliasWitnessMonitor::AliasWitnessMonitor(const IRModule &M) : M(M) {
  for (const IRFunction &F : M.Functions)
    for (const BasicBlock &B : F.Blocks)
      for (const Instr &I : B.Instrs)
        if (I.isMemAccess())
          Refs.emplace(I.StaticId, RefInfo{F.Id, I.Path});
}

void AliasWitnessMonitor::record(uint64_t Addr, uint32_t StaticId) {
  if (!Refs.count(StaticId))
    return;
  Touched[Addr].insert(StaticId);
}

void AliasWitnessMonitor::onLoad(const LoadEvent &E) {
  if (E.IsHeap && !E.Implicit)
    record(E.Addr, E.StaticId);
}

void AliasWitnessMonitor::onStore(const StoreEvent &E) {
  if (E.IsHeap)
    record(E.Addr, E.StaticId);
}

size_t AliasWitnessMonitor::witnessedPairCount() const {
  size_t N = 0;
  for (const auto &[Addr, Ids] : Touched)
    if (Ids.size() > 1)
      N += Ids.size() * (Ids.size() - 1) / 2;
  return N;
}

std::string AliasWitnessMonitor::verify(const AliasOracle &Oracle,
                                        unsigned MaxReports) const {
  std::ostringstream Err;
  unsigned Reported = 0;
  for (const auto &[Addr, Ids] : Touched) {
    if (Ids.size() < 2)
      continue;
    for (auto It1 = Ids.begin(); It1 != Ids.end(); ++It1) {
      for (auto It2 = std::next(It1); It2 != Ids.end(); ++It2) {
        const RefInfo &A = Refs.at(*It1);
        const RefInfo &B = Refs.at(*It2);
        bool Admitted =
            A.Func == B.Func
                ? Oracle.mayAlias(A.Path, B.Path)
                : Oracle.mayAliasAbs(AbsLoc::fromPath(A.Path),
                                     AbsLoc::fromPath(B.Path));
        if (Admitted)
          continue;
        if (Reported++ < MaxReports) {
          const IRFunction &FA = M.Functions[A.Func];
          const IRFunction &FB = M.Functions[B.Func];
          Err << Oracle.name() << " denies a dynamically proven alias: "
              << FA.Name << ":" << pathToString(FA, M, A.Path) << " vs "
              << FB.Name << ":" << pathToString(FB, M, B.Path)
              << " at address 0x" << std::hex << Addr << std::dec << "\n";
        }
      }
    }
  }
  if (Reported > MaxReports)
    Err << "... and " << (Reported - MaxReports) << " more violations\n";
  return Err.str();
}
