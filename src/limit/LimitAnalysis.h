//===- LimitAnalysis.h - Dynamic redundant-load limit study -----*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.5's upper-bound methodology. "A redundant load is when two
/// consecutive loads of the same address load the same value in the same
/// procedure activation. We instrument every load in an executable,
/// recording its address and value" (their ATOM tool; our VM monitor).
///
/// Run once on the original program (black bars of Figure 9) and once on
/// the TBAA+RLE program (white bars). Remaining redundant loads are
/// classified into the paper's five sources (Figure 10):
///
///   Encapsulated  - implicit in the representation (open-array dope
///                   vector reads, method-dispatch descriptor reads)
///   AliasFailure  - a perfect alias oracle would have let RLE remove the
///                   load (the paper measured zero of these)
///   Conditional   - only partially redundant; PRE territory
///   Breakup       - the equal value was last produced by a *different*
///                   lexical access path (missing copy propagation)
///   Rest          - everything else (loop-carried, cross-call, ...)
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_LIMIT_LIMITANALYSIS_H
#define TBAA_LIMIT_LIMITANALYSIS_H

#include "core/AliasOracle.h"
#include "exec/Monitor.h"
#include "ir/IR.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tbaa {

/// Classification of the remaining dynamic redundancy (Figure 10).
struct RedundancyBreakdown {
  uint64_t Encapsulated = 0;
  uint64_t AliasFailure = 0;
  uint64_t Conditional = 0;
  uint64_t Breakup = 0;
  uint64_t Rest = 0;

  uint64_t total() const {
    return Encapsulated + AliasFailure + Conditional + Breakup + Rest;
  }
};

/// Attach to a VM run to measure dynamic load redundancy.
class RedundantLoadMonitor : public ExecMonitor {
public:
  RedundantLoadMonitor() = default;

  /// Enables Figure 10 classification: \p Conditional are static ids of
  /// partially-redundant loads (findPartiallyRedundantLoads); \p
  /// PerfectRemovable the loads a perfect-oracle RLE would still remove
  /// (findRemovableLoads with the Perfect level).
  void configureClassifier(const std::vector<uint32_t> &Conditional,
                           const std::vector<uint32_t> &PerfectRemovable);

  void onLoad(const LoadEvent &E) override;
  void onStore(const StoreEvent &E) override;

  uint64_t heapLoads() const { return HeapLoads; }
  uint64_t redundantLoads() const { return Redundant; }
  /// Fraction of heap loads that were redundant (Figure 9's y axis, when
  /// divided by the *original* program's heap references by the caller).
  double redundantFraction() const {
    return HeapLoads ? static_cast<double>(Redundant) /
                           static_cast<double>(HeapLoads)
                     : 0.0;
  }
  const RedundancyBreakdown &breakdown() const { return Breakdown; }

  /// Dynamic redundancy count per static load instruction (diagnosis).
  const std::unordered_map<uint32_t, uint64_t> &redundantByInstr() const {
    return RedundantByInstr;
  }

private:
  struct LastLoad {
    uint64_t Value = 0;
    uint64_t Activation = 0;
    uint32_t StaticId = InvalidStaticId;
  };

  std::unordered_map<uint64_t, LastLoad> Last; ///< heap address -> record
  std::unordered_set<uint32_t> ConditionalIds;
  std::unordered_set<uint32_t> PerfectIds;
  bool Classify = false;
  uint64_t HeapLoads = 0, Redundant = 0;
  RedundancyBreakdown Breakdown;
  std::unordered_map<uint32_t, uint64_t> RedundantByInstr;
};

} // namespace tbaa

#endif // TBAA_LIMIT_LIMITANALYSIS_H
