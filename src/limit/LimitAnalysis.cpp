//===- LimitAnalysis.cpp --------------------------------------------------===//

#include "limit/LimitAnalysis.h"

using namespace tbaa;

void RedundantLoadMonitor::configureClassifier(
    const std::vector<uint32_t> &Conditional,
    const std::vector<uint32_t> &PerfectRemovable) {
  ConditionalIds.insert(Conditional.begin(), Conditional.end());
  PerfectIds.insert(PerfectRemovable.begin(), PerfectRemovable.end());
  Classify = true;
}

void RedundantLoadMonitor::onLoad(const LoadEvent &E) {
  if (!E.IsHeap)
    return;
  ++HeapLoads;
  LastLoad &L = Last[E.Addr];
  bool IsRedundant = L.StaticId != InvalidStaticId &&
                     L.Activation == E.Activation && L.Value == E.ValueBits;
  if (IsRedundant) {
    ++Redundant;
    ++RedundantByInstr[E.StaticId];
    if (Classify) {
      if (E.Implicit)
        ++Breakdown.Encapsulated;
      else if (PerfectIds.count(E.StaticId))
        ++Breakdown.AliasFailure;
      else if (ConditionalIds.count(E.StaticId))
        ++Breakdown.Conditional;
      else if (L.StaticId != E.StaticId)
        ++Breakdown.Breakup;
      else
        ++Breakdown.Rest;
    }
  }
  L.Value = E.ValueBits;
  L.Activation = E.Activation;
  L.StaticId = E.StaticId;
}

void RedundantLoadMonitor::onStore(const StoreEvent &E) {
  // The paper's definition is purely load-based: a load is redundant when
  // the previous load of the address produced the same value, stores or
  // not. Nothing to do, but keeping the hook documents the decision.
  (void)E;
}
