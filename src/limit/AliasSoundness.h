//===- AliasSoundness.h - Dynamic soundness check for oracles ---*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic validation of the may-alias oracles: while a program runs,
/// record which memory-reference instructions touch which heap words;
/// afterwards, every pair of references observed on the same word is a
/// *proven* alias, and a sound analysis must admit it. This is the
/// property-based safety net behind all three TBAA variants (the paper
/// argues soundness from type safety; we additionally test it).
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_LIMIT_ALIASSOUNDNESS_H
#define TBAA_LIMIT_ALIASSOUNDNESS_H

#include "core/AliasOracle.h"
#include "exec/Monitor.h"
#include "ir/IR.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace tbaa {

/// Records, per heap word, the set of access-path instructions that
/// touched it (implicit dope/dispatch reads excluded: they are not
/// source-level access paths).
class AliasWitnessMonitor : public ExecMonitor {
public:
  explicit AliasWitnessMonitor(const IRModule &M);

  void onLoad(const LoadEvent &E) override;
  void onStore(const StoreEvent &E) override;

  /// Checks every dynamically-proven alias pair against \p Oracle.
  /// Returns a description of the first violations (empty = sound).
  std::string verify(const AliasOracle &Oracle, unsigned MaxReports = 5) const;

  /// Number of distinct proven-alias pairs observed.
  size_t witnessedPairCount() const;

private:
  void record(uint64_t Addr, uint32_t StaticId);

  struct RefInfo {
    FuncId Func;
    MemPath Path;
  };
  const IRModule &M;
  /// StaticId -> reference info for memory-access instructions.
  std::map<uint32_t, RefInfo> Refs;
  /// Heap word -> distinct instructions that touched it.
  std::map<uint64_t, std::set<uint32_t>> Touched;
};

} // namespace tbaa

#endif // TBAA_LIMIT_ALIASSOUNDNESS_H
