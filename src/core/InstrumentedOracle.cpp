//===- InstrumentedOracle.cpp ---------------------------------------------===//

#include "core/InstrumentedOracle.h"

#include "support/Metrics.h"
#include "support/Stats.h"

#include <ctime>

using namespace tbaa;

TBAA_STATISTIC(NumQueries, "oracle", "queries",
               "Alias queries answered (path + abstract)");
TBAA_STATISTIC(NumMayAlias, "oracle", "may-alias",
               "Queries answered may-alias");
TBAA_STATISTIC(NumNoAlias, "oracle", "no-alias",
               "Queries answered no-alias");
TBAA_STATISTIC(NumCacheHits, "oracle", "cache-hits",
               "Queries served from the memo table");
TBAA_STATISTIC(NumMemoEvictions, "oracle", "memo-evictions",
               "Memo-table wipes forced by the capacity bound");

TBAA_HISTOGRAM(OracleQueryNs, "oracle", "query-ns",
               "Alias query latency, memo hits included", "ns");

namespace {

uint64_t nowNs() {
  timespec TS;
  clock_gettime(CLOCK_MONOTONIC, &TS);
  return static_cast<uint64_t>(TS.tv_sec) * 1000000000 +
         static_cast<uint64_t>(TS.tv_nsec);
}

/// Samples query latency into oracle.query-ns. The clock is read only
/// when the metrics registry is enabled, so the default query path pays
/// one predicted branch per end.
struct QueryTimer {
  bool On;
  uint64_t T0 = 0;
  QueryTimer() : On(MetricsRegistry::instance().enabled()) {
    if (On)
      T0 = nowNs();
  }
  ~QueryTimer() {
    if (On)
      OracleQueryNs.record(nowNs() - T0);
  }
};

// Key packing. Equal keys imply equal inputs for both MemPath::operator==
// (root/selector/field/index) and AbsLoc (selector/field/base/value
// types), i.e. everything any oracle implementation inspects, so a memo
// hit can never change an answer.

std::array<uint64_t, 5> packPath(const MemPath &P) {
  std::array<uint64_t, 5> K;
  K[0] = (static_cast<uint64_t>(P.Root.K) << 32) | P.Root.Index;
  K[1] = (static_cast<uint64_t>(P.Sel) << 32) | P.Field;
  K[2] = static_cast<uint64_t>(P.Index.K) << 56;
  switch (P.Index.K) {
  case Operand::Kind::Var:
    K[2] |= (static_cast<uint64_t>(P.Index.Var.K) << 32) | P.Index.Var.Index;
    K[3] = 0;
    break;
  case Operand::Kind::Temp:
    K[2] |= P.Index.Temp;
    K[3] = 0;
    break;
  default:
    K[3] = static_cast<uint64_t>(P.Index.Imm);
    break;
  }
  K[4] = (static_cast<uint64_t>(P.BaseType) << 32) | P.ValueType;
  return K;
}

std::array<uint64_t, 2> packAbs(const AbsLoc &L) {
  std::array<uint64_t, 2> K;
  K[0] = (static_cast<uint64_t>(L.Sel) << 32) | L.Field;
  K[1] = (static_cast<uint64_t>(L.BaseType) << 32) | L.ValueType;
  return K;
}

/// Dense-id assignment: paths take even ids, abstract locations odd, so
/// the two universes can share one (idA, idB) memo without colliding.
template <typename Map, typename Key>
uint32_t internId(Map &M, const Key &K, uint32_t Parity) {
  auto [It, Inserted] =
      M.try_emplace(K, static_cast<uint32_t>(M.size()) * 2 + Parity);
  (void)Inserted;
  return It->second;
}

} // namespace

InstrumentedOracle::InstrumentedOracle(std::unique_ptr<AliasOracle> Inner)
    : Inner(std::move(Inner)) {}

InstrumentedOracle::~InstrumentedOracle() = default;

bool InstrumentedOracle::recordVerdict(bool May) const {
  ++NumQueries;
  if (May) {
    ++Counters.MayAlias;
    ++NumMayAlias;
  } else {
    ++Counters.NoAlias;
    ++NumNoAlias;
  }
  return May;
}

const bool *InstrumentedOracle::memoFind(uint64_t Key) const {
  auto It = Memo.find(Key);
  if (It != Memo.end())
    return &It->second;
  if (Memo.size() >= MemoCapacity) {
    // Wipe rather than LRU: verdicts are one byte and recomputation is
    // cheap, so the simple policy keeps the hot path a single hash probe.
    // The interners survive -- ids stay stable across wipes.
    Memo.clear();
    ++Counters.Evictions;
    ++NumMemoEvictions;
  }
  return nullptr;
}

void InstrumentedOracle::memoInsert(uint64_t Key, bool Verdict) const {
  Memo.emplace(Key, Verdict);
}

bool InstrumentedOracle::mayAlias(const MemPath &A, const MemPath &B) const {
  QueryTimer QT;
  // One lock spans intern + memo + verdict + the inner oracle, so the
  // whole query is atomic under the parallel pipeline (the degrading
  // inner oracle mutates downgrade state and charges the budget).
  std::unique_lock<std::mutex> Lock(QueryMu, std::defer_lock);
  if (ThreadSafe)
    Lock.lock();
  ++Counters.PathQueries;
  uint64_t IdA = internId(PathIds, packPath(A), 0);
  uint64_t IdB = internId(PathIds, packPath(B), 0);
  uint64_t Key = (IdA << 32) | IdB;
  if (const bool *Hit = memoFind(Key)) {
    ++Counters.CacheHits;
    ++NumCacheHits;
    return recordVerdict(*Hit);
  }
  bool May = Inner->mayAlias(A, B);
  memoInsert(Key, May);
  return recordVerdict(May);
}

bool InstrumentedOracle::mayAliasAbs(const AbsLoc &A, const AbsLoc &B) const {
  QueryTimer QT;
  std::unique_lock<std::mutex> Lock(QueryMu, std::defer_lock);
  if (ThreadSafe)
    Lock.lock();
  ++Counters.AbsQueries;
  uint64_t IdA = internId(AbsIds, packAbs(A), 1);
  uint64_t IdB = internId(AbsIds, packAbs(B), 1);
  uint64_t Key = (IdA << 32) | IdB;
  if (const bool *Hit = memoFind(Key)) {
    ++Counters.CacheHits;
    ++NumCacheHits;
    return recordVerdict(*Hit);
  }
  bool May = Inner->mayAliasAbs(A, B);
  memoInsert(Key, May);
  return recordVerdict(May);
}

void InstrumentedOracle::resetStats() { Counters = OracleStats(); }

std::unique_ptr<InstrumentedOracle>
tbaa::makeInstrumentedOracle(const TBAAContext &Ctx, AliasLevel Level) {
  return std::make_unique<InstrumentedOracle>(makeAliasOracle(Ctx, Level));
}
