//===- InstrumentedOracle.cpp ---------------------------------------------===//

#include "core/InstrumentedOracle.h"

#include "support/Stats.h"

#include <algorithm>

using namespace tbaa;

TBAA_STATISTIC(NumQueries, "oracle", "queries",
               "Alias queries answered (path + abstract)");
TBAA_STATISTIC(NumMayAlias, "oracle", "may-alias",
               "Queries answered may-alias");
TBAA_STATISTIC(NumNoAlias, "oracle", "no-alias",
               "Queries answered no-alias");
TBAA_STATISTIC(NumCacheHits, "oracle", "cache-hits",
               "Queries served from the memo table");

namespace {

// Key packing. Equal keys imply equal inputs for both MemPath::operator==
// (root/selector/field/index) and AbsLoc (selector/field/base/value
// types), i.e. everything any oracle implementation inspects, so a memo
// hit can never change an answer.

std::array<uint64_t, 5> packPath(const MemPath &P) {
  std::array<uint64_t, 5> K;
  K[0] = (static_cast<uint64_t>(P.Root.K) << 32) | P.Root.Index;
  K[1] = (static_cast<uint64_t>(P.Sel) << 32) | P.Field;
  K[2] = static_cast<uint64_t>(P.Index.K) << 56;
  switch (P.Index.K) {
  case Operand::Kind::Var:
    K[2] |= (static_cast<uint64_t>(P.Index.Var.K) << 32) | P.Index.Var.Index;
    K[3] = 0;
    break;
  case Operand::Kind::Temp:
    K[2] |= P.Index.Temp;
    K[3] = 0;
    break;
  default:
    K[3] = static_cast<uint64_t>(P.Index.Imm);
    break;
  }
  K[4] = (static_cast<uint64_t>(P.BaseType) << 32) | P.ValueType;
  return K;
}

std::array<uint64_t, 2> packAbs(const AbsLoc &L) {
  std::array<uint64_t, 2> K;
  K[0] = (static_cast<uint64_t>(L.Sel) << 32) | L.Field;
  K[1] = (static_cast<uint64_t>(L.BaseType) << 32) | L.ValueType;
  return K;
}

} // namespace

InstrumentedOracle::InstrumentedOracle(std::unique_ptr<AliasOracle> Inner)
    : Inner(std::move(Inner)) {}

InstrumentedOracle::~InstrumentedOracle() = default;

bool InstrumentedOracle::recordVerdict(bool May) const {
  ++NumQueries;
  if (May) {
    ++Counters.MayAlias;
    ++NumMayAlias;
  } else {
    ++Counters.NoAlias;
    ++NumNoAlias;
  }
  return May;
}

bool InstrumentedOracle::mayAlias(const MemPath &A, const MemPath &B) const {
  ++Counters.PathQueries;
  std::array<uint64_t, 5> KA = packPath(A), KB = packPath(B);
  PathKey Key;
  std::copy(KA.begin(), KA.end(), Key.begin());
  std::copy(KB.begin(), KB.end(), Key.begin() + 5);
  auto [It, Inserted] = PathCache.try_emplace(Key, false);
  if (!Inserted) {
    ++Counters.CacheHits;
    ++NumCacheHits;
    return recordVerdict(It->second);
  }
  It->second = Inner->mayAlias(A, B);
  return recordVerdict(It->second);
}

bool InstrumentedOracle::mayAliasAbs(const AbsLoc &A, const AbsLoc &B) const {
  ++Counters.AbsQueries;
  std::array<uint64_t, 2> KA = packAbs(A), KB = packAbs(B);
  AbsKey Key;
  std::copy(KA.begin(), KA.end(), Key.begin());
  std::copy(KB.begin(), KB.end(), Key.begin() + 2);
  auto [It, Inserted] = AbsCache.try_emplace(Key, false);
  if (!Inserted) {
    ++Counters.CacheHits;
    ++NumCacheHits;
    return recordVerdict(It->second);
  }
  It->second = Inner->mayAliasAbs(A, B);
  return recordVerdict(It->second);
}

void InstrumentedOracle::resetStats() { Counters = OracleStats(); }

std::unique_ptr<InstrumentedOracle>
tbaa::makeInstrumentedOracle(const TBAAContext &Ctx, AliasLevel Level) {
  return std::make_unique<InstrumentedOracle>(makeAliasOracle(Ctx, Level));
}
