//===- TBAAContext.cpp ----------------------------------------------------===//

#include "core/TBAAContext.h"

#include "support/Budget.h"
#include "support/Remarks.h"
#include "support/Stats.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <cassert>

using namespace tbaa;

TBAA_STATISTIC(NumTypeRefsDropped, "degrade", "typerefs-dropped",
               "SMTypeRefs tables abandoned under budget (fell back to "
               "declared-type compatibility)");

TBAAContext::TBAAContext(const ModuleAST &M, const TypeTable &Types,
                         TBAAOptions Opts)
    : Types(Types), Opts(Opts), NumTypes(Types.size()) {
  assert(Types.isFinalized() && "TBAA requires a finalized type table");

  // --- Subtypes(T) bitsets over canonical ids ---
  SubtypeBits.assign(NumTypes, DynBitset(NumTypes));
  for (TypeId Id = 0; Id != NumTypes; ++Id) {
    if (Types.canonical(Id) != Id)
      continue;
    for (TypeId S : Types.subtypes(Id))
      SubtypeBits[Id].set(Types.canonical(S));
  }

  // --- Step 1 of Figure 2: every type alone in its group ---
  UnionFind Groups(NumTypes);
  UF = &Groups;

  // --- Step 2: one linear pass over the program, merging at pointer
  // assignments (explicit and implicit) ---
  for (const auto &[Sym, Init] : M.GlobalInits) {
    recordAssignment(Sym->Type, Init->ExprType);
    collectFromExpr(*Init);
  }
  for (const auto &P : M.Procs) {
    CurReturnType = P->ReturnType;
    for (const auto &Param : P->Params)
      if (Param->ByRef)
        ByRefFormalTypes.push_back(Types.canonical(Param->Type));
    for (const auto &[Sym, Init] : P->LocalInits) {
      recordAssignment(Sym->Type, Init->ExprType);
      collectFromExpr(*Init);
    }
    collectFromStmtList(P->Body);
  }
  // Implicit receiver assignments: any object of type T whose dispatch
  // table binds procedure Impl may flow into Impl's receiver formal.
  for (TypeId Id = 0; Id != NumTypes; ++Id) {
    const Type &T = Types.get(Id);
    if (T.Kind != TypeKind::Object || Types.canonical(Id) != Id)
      continue;
    for (ProcId Impl : T.DispatchTable) {
      if (Impl == InvalidProcId)
        continue;
      const ProcDecl &P = *M.Procs[Impl];
      assert(!P.Params.empty() && "method impl without receiver");
      recordAssignment(P.Params[0]->Type, Id);
    }
  }
  // Method byref formal types (identical to their impls' formals, but the
  // signature is the source of truth for the open world clause).
  for (TypeId Id = 0; Id != NumTypes; ++Id) {
    const Type &T = Types.get(Id);
    if (T.Kind != TypeKind::Object)
      continue;
    for (const MethodInfo &MI : T.Methods)
      for (const ParamInfo &PI : MI.Params)
        if (PI.ByRef)
          ByRefFormalTypes.push_back(Types.canonical(PI.Type));
  }
  std::sort(ByRefFormalTypes.begin(), ByRefFormalTypes.end());
  ByRefFormalTypes.erase(
      std::unique(ByRefFormalTypes.begin(), ByRefFormalTypes.end()),
      ByRefFormalTypes.end());

  // --- Section 4: unavailable code may assign between any two
  // subtype-related types it can reconstruct (no BRANDED component) ---
  if (Opts.OpenWorld) {
    for (TypeId Id = 0; Id != NumTypes; ++Id) {
      const Type &T = Types.get(Id);
      if (T.Kind != TypeKind::Object || Types.canonical(Id) != Id)
        continue;
      if (!Types.isAccessibleToUnavailableCode(Id))
        continue;
      for (TypeId Cur = T.Super; Cur != InvalidTypeId;
           Cur = Types.get(Cur).Super)
        if (Types.isAccessibleToUnavailableCode(Cur))
          uniteGroups(Id, Cur);
    }
  }

  // --- Step 3: TypeRefsTable(t) = Group(t) ∩ Subtypes(t) ---
  // This is the superlinear part (a row over all types per pointer
  // type), so it pays into the TypeRefs step budget; on exhaustion the
  // half-built tables are abandoned and the accessors fall back to
  // TypeDecl compatibility, which needs only SubtypeBits.
  PhaseBudget &Budget = BudgetRegistry::instance().TypeRefs;
  GroupOf.assign(NumTypes, 0);
  for (TypeId Id = 0; Id != NumTypes; ++Id)
    GroupOf[Id] = Groups.find(Types.canonical(Id));
  TypeRefsBits.assign(NumTypes, DynBitset(NumTypes));
  for (TypeId Id = 0; Id != NumTypes && !Degraded; ++Id) {
    if (Types.canonical(Id) != Id)
      continue;
    if (!Budget.charge(NumTypes)) {
      Degraded = true;
      break;
    }
    DynBitset &Bits = TypeRefsBits[Id];
    if (Types.isReferenceLike(Id)) {
      for (TypeId Other = 0; Other != NumTypes; ++Other)
        if (Types.canonical(Other) == Other && GroupOf[Other] == GroupOf[Id])
          Bits.set(Other);
      Bits &= SubtypeBits[Id];
    } else {
      // Non-pointer types refer only to themselves.
      Bits.set(Id);
    }
  }
  if (Degraded) {
    ++NumTypeRefsDropped;
    RemarkEngine::instance().emit(
        Remark(RemarkKind::Analysis, "degrade", "TypeRefsDropped", SourceLoc{},
               "SMTypeRefs construction exhausted its step budget; answering "
               "with declared-type compatibility instead")
            .arg("budget", std::to_string(Budget.Limit))
            .arg("types", std::to_string(NumTypes)));
  }
  UF = nullptr;
}

void TBAAContext::uniteGroups(TypeId A, TypeId B) {
  assert(UF && "uniteGroups outside construction");
  TypeId CA = Types.canonical(A), CB = Types.canonical(B);
  if (UF->find(CA) == UF->find(CB))
    return;
  UF->unite(CA, CB);
  ++Merges;
}

void TBAAContext::recordAssignment(TypeId Lhs, TypeId Rhs) {
  TypeId L = Types.canonical(Lhs), R = Types.canonical(Rhs);
  if (L == R)
    return;
  if (!Types.isReferenceLike(L) || !Types.isReferenceLike(R))
    return;
  if (Types.get(L).Kind == TypeKind::Nil || Types.get(R).Kind == TypeKind::Nil)
    return;
  uniteGroups(L, R);
}

void TBAAContext::recordAddressTaken(const Expr &Designator) {
  switch (Designator.Kind) {
  case ExprKind::Field: {
    const auto &F = static_cast<const FieldExpr &>(Designator);
    FieldFacts.push_back({F.Field, Types.canonical(F.Base->ExprType)});
    return;
  }
  case ExprKind::Index: {
    const auto &I = static_cast<const IndexExpr &>(Designator);
    ElemFacts.push_back(Types.canonical(I.Base->ExprType));
    return;
  }
  case ExprKind::Name:
  case ExprKind::Deref:
    // Taking a variable's address creates no heap-field fact; taking p^'s
    // address is the identity on p's value.
    return;
  default:
    assert(false && "address of a non-designator");
    return;
  }
}

void TBAAContext::collectFromExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::NilLit:
  case ExprKind::Name:
    return;
  case ExprKind::Field:
    collectFromExpr(*static_cast<const FieldExpr &>(E).Base);
    return;
  case ExprKind::Deref:
    collectFromExpr(*static_cast<const DerefExpr &>(E).Base);
    return;
  case ExprKind::Index: {
    const auto &I = static_cast<const IndexExpr &>(E);
    collectFromExpr(*I.Base);
    collectFromExpr(*I.Idx);
    return;
  }
  case ExprKind::Call: {
    const auto &C = static_cast<const CallExpr &>(E);
    for (size_t K = 0; K != C.Args.size(); ++K) {
      const VarSymbol &Formal = *C.Callee->Params[K];
      if (Formal.ByRef)
        recordAddressTaken(*C.Args[K]);
      else
        recordAssignment(Formal.Type, C.Args[K]->ExprType);
      collectFromExpr(*C.Args[K]);
    }
    return;
  }
  case ExprKind::MethodCall: {
    const auto &C = static_cast<const MethodCallExpr &>(E);
    collectFromExpr(*C.Base);
    const MethodInfo *MI = Types.findMethod(C.ReceiverType, C.MethodName);
    assert(MI && "method vanished after Sema");
    for (size_t K = 0; K != C.Args.size(); ++K) {
      if (MI->Params[K].ByRef)
        recordAddressTaken(*C.Args[K]);
      else
        recordAssignment(MI->Params[K].Type, C.Args[K]->ExprType);
      collectFromExpr(*C.Args[K]);
    }
    return;
  }
  case ExprKind::New: {
    const auto &N = static_cast<const NewExpr &>(E);
    if (N.SizeArg)
      collectFromExpr(*N.SizeArg);
    return;
  }
  case ExprKind::Narrow: {
    // A checked downcast lets Type(e)'s referents flow into TargetType-
    // typed access paths: an implicit assignment for Step 2 of Figure 2.
    const auto &N = static_cast<const NarrowExpr &>(E);
    recordAssignment(N.TargetType, N.Sub->ExprType);
    collectFromExpr(*N.Sub);
    return;
  }
  case ExprKind::IsType:
    collectFromExpr(*static_cast<const IsTypeExpr &>(E).Sub);
    return;
  case ExprKind::NumberOf:
    collectFromExpr(*static_cast<const NumberOfExpr &>(E).Arg);
    return;
  case ExprKind::Unary:
    collectFromExpr(*static_cast<const UnaryExpr &>(E).Sub);
    return;
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    collectFromExpr(*B.Lhs);
    collectFromExpr(*B.Rhs);
    return;
  }
  }
}

void TBAAContext::collectFromStmtList(const StmtList &Stmts) {
  for (const StmtPtr &S : Stmts)
    collectFromStmt(*S);
}

void TBAAContext::collectFromStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Assign: {
    const auto &A = static_cast<const AssignStmt &>(S);
    recordAssignment(A.Lhs->ExprType, A.Rhs->ExprType);
    collectFromExpr(*A.Lhs);
    collectFromExpr(*A.Rhs);
    return;
  }
  case StmtKind::Call:
    collectFromExpr(*static_cast<const CallStmt &>(S).Call);
    return;
  case StmtKind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    for (const auto &[Cond, Body] : I.Arms) {
      collectFromExpr(*Cond);
      collectFromStmtList(Body);
    }
    collectFromStmtList(I.ElseBody);
    return;
  }
  case StmtKind::While: {
    const auto &W = static_cast<const WhileStmt &>(S);
    collectFromExpr(*W.Cond);
    collectFromStmtList(W.Body);
    return;
  }
  case StmtKind::Repeat: {
    const auto &R = static_cast<const RepeatStmt &>(S);
    collectFromStmtList(R.Body);
    collectFromExpr(*R.Cond);
    return;
  }
  case StmtKind::For: {
    const auto &F = static_cast<const ForStmt &>(S);
    collectFromExpr(*F.From);
    collectFromExpr(*F.To);
    collectFromStmtList(F.Body);
    return;
  }
  case StmtKind::Loop:
    collectFromStmtList(static_cast<const LoopStmt &>(S).Body);
    return;
  case StmtKind::Exit:
    return;
  case StmtKind::Return: {
    const auto &R = static_cast<const ReturnStmt &>(S);
    if (R.Value) {
      recordAssignment(CurReturnType, R.Value->ExprType);
      collectFromExpr(*R.Value);
    }
    return;
  }
  case StmtKind::With: {
    const auto &W = static_cast<const WithStmt &>(S);
    if (W.IsAlias)
      recordAddressTaken(*W.Bound);
    else
      recordAssignment(W.Binding->Type, W.Bound->ExprType);
    collectFromExpr(*W.Bound);
    collectFromStmtList(W.Body);
    return;
  }
  case StmtKind::IncDec: {
    // Integer-only read-modify-write: no pointer assignment to merge.
    const auto &I = static_cast<const IncDecStmt &>(S);
    collectFromExpr(*I.Target);
    if (I.Amount)
      collectFromExpr(*I.Amount);
    return;
  }
  case StmtKind::Eval:
    collectFromExpr(*static_cast<const EvalStmt &>(S).Value);
    return;
  case StmtKind::TypeCase: {
    const auto &T = static_cast<const TypeCaseStmt &>(S);
    collectFromExpr(*T.Subject);
    for (const TypeCaseArm &Arm : T.Arms) {
      // Like NARROW: the subject flows into arm-typed access paths.
      recordAssignment(Arm.Target, T.Subject->ExprType);
      collectFromStmtList(Arm.Body);
    }
    collectFromStmtList(T.ElseBody);
    return;
  }
  }
}

const DynBitset &TBAAContext::subtypeSet(TypeId T) const {
  return SubtypeBits[Types.canonical(T)];
}

const DynBitset &TBAAContext::typeRefsSet(TypeId T) const {
  return TypeRefsBits[Types.canonical(T)];
}

bool TBAAContext::typeDeclCompat(TypeId A, TypeId B) const {
  return subtypeSet(A).intersects(subtypeSet(B));
}

bool TBAAContext::typeRefsCompat(TypeId A, TypeId B) const {
  // Degraded: the TypeRefs tables were never finished. TypeDecl
  // compatibility is a superset (TypeRefs(t) ⊆ Subtypes(t)), so this
  // only ever *adds* may-alias answers -- sound for every consumer.
  if (Degraded)
    return typeDeclCompat(A, B);
  return typeRefsSet(A).intersects(typeRefsSet(B));
}

std::vector<TypeId> TBAAContext::typeRefs(TypeId T) const {
  if (Degraded)
    return subtypeSet(T).elements();
  return typeRefsSet(T).elements();
}

bool TBAAContext::addressTakenField(FieldId F, TypeId BaseType,
                                    TypeId FieldValueType,
                                    bool UseTypeRefs) const {
  for (const FieldFact &Fact : FieldFacts) {
    if (Fact.Field != F)
      continue;
    bool Compat = UseTypeRefs ? typeRefsCompat(Fact.BaseType, BaseType)
                              : typeDeclCompat(Fact.BaseType, BaseType);
    if (Compat)
      return true;
  }
  if (Opts.OpenWorld) {
    // Unavailable code may have passed some compatible p.f by reference:
    // M3L requires VAR actual and formal types to be identical.
    TypeId V = Types.canonical(FieldValueType);
    if (std::binary_search(ByRefFormalTypes.begin(), ByRefFormalTypes.end(),
                           V))
      return true;
  }
  return false;
}

bool TBAAContext::addressTakenElem(TypeId ArrayType, TypeId ElemType,
                                   bool UseTypeRefs) const {
  for (TypeId Fact : ElemFacts) {
    bool Compat = UseTypeRefs ? typeRefsCompat(Fact, ArrayType)
                              : typeDeclCompat(Fact, ArrayType);
    if (Compat)
      return true;
  }
  if (Opts.OpenWorld) {
    TypeId V = Types.canonical(ElemType);
    if (std::binary_search(ByRefFormalTypes.begin(), ByRefFormalTypes.end(),
                           V))
      return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Canonical content fingerprint (partition cache key)
//===----------------------------------------------------------------------===//

#include "support/CRC32.h"

#include <map>
#include <set>
#include <sstream>

namespace {

/// Renders a canonical type as an id-free structural descriptor. Names
/// participate (M3L type names are unique per table), module-local ids do
/// not, so two tables declaring the same types in any order render
/// identically. Cycles (objects/refs reaching themselves) turn into
/// back-references "@<distance>" against the render stack, the same trick
/// structural equality uses.
void renderDesc(const TypeTable &Types, TypeId Id, std::vector<TypeId> &Stack,
                std::string &Out) {
  if (Id == InvalidTypeId) {
    Out += "-";
    return;
  }
  Id = Types.canonical(Id);
  for (size_t I = Stack.size(); I != 0; --I) {
    if (Stack[I - 1] == Id) {
      Out += "@";
      Out += std::to_string(Stack.size() - (I - 1));
      return;
    }
  }
  const Type &T = Types.get(Id);
  switch (T.Kind) {
  case TypeKind::Forward:
    Out += "?fwd";
    return;
  case TypeKind::Integer:
    Out += "int";
    return;
  case TypeKind::Boolean:
    Out += "bool";
    return;
  case TypeKind::Nil:
    Out += "nil";
    return;
  case TypeKind::Void:
    Out += "void";
    return;
  case TypeKind::Object:
  case TypeKind::Record:
  case TypeKind::Array:
  case TypeKind::Ref:
    break;
  }
  Stack.push_back(Id);
  switch (T.Kind) {
  case TypeKind::Object: {
    Out += "obj<";
    Out += T.Name;
    Out += "|";
    if (T.Brand)
      Out += *T.Brand;
    Out += "|s:";
    renderDesc(Types, T.Super, Stack, Out);
    for (const FieldInfo &F : T.Fields) {
      Out += "|f:";
      Out += F.Name;
      Out += ":";
      renderDesc(Types, F.Type, Stack, Out);
    }
    for (const MethodInfo &M : T.Methods) {
      Out += "|m:";
      Out += M.Name;
      Out += "(";
      for (const ParamInfo &P : M.Params) {
        Out += P.ByRef ? "var " : "";
        renderDesc(Types, P.Type, Stack, Out);
        Out += ",";
      }
      Out += "):";
      renderDesc(Types, M.ReturnType, Stack, Out);
    }
    Out += ">";
    break;
  }
  case TypeKind::Record: {
    Out += "rec<";
    Out += T.Name;
    for (const FieldInfo &F : T.Fields) {
      Out += "|f:";
      Out += F.Name;
      Out += ":";
      renderDesc(Types, F.Type, Stack, Out);
    }
    Out += ">";
    break;
  }
  case TypeKind::Array: {
    Out += "arr<";
    Out += T.Name;
    Out += "|";
    if (T.IsOpen)
      Out += "open";
    else {
      Out += std::to_string(T.Lo);
      Out += "..";
      Out += std::to_string(T.Hi);
    }
    Out += "|";
    renderDesc(Types, T.Elem, Stack, Out);
    Out += ">";
    break;
  }
  case TypeKind::Ref: {
    Out += "ref<";
    Out += T.Name;
    Out += "|";
    renderDesc(Types, T.Target, Stack, Out);
    Out += ">";
    break;
  }
  default:
    break;
  }
  Stack.pop_back();
}

} // namespace

const ContextFingerprint &TBAAContext::fingerprint() const {
  if (FP)
    return *FP;
  FP = std::make_unique<ContextFingerprint>();
  ContextFingerprint &F = *FP;

  // --- Structural descriptors for every canonical type ---
  std::vector<std::pair<std::string, TypeId>> Descs;
  for (TypeId Id = 0; Id != NumTypes; ++Id) {
    if (Types.canonical(Id) != Id)
      continue;
    std::string D;
    std::vector<TypeId> Stack;
    renderDesc(Types, Id, Stack, D);
    Descs.emplace_back(std::move(D), Id);
  }
  std::sort(Descs.begin(), Descs.end());
  for (size_t I = 1; I < Descs.size(); ++I) {
    if (Descs[I].first == Descs[I - 1].first)
      return F; // ambiguous ranking: two distinct canonicals render alike
  }

  // --- TypeId -> rank (canonical's rank shared by all its aliases) ---
  F.TypeRank.assign(NumTypes, ~0u);
  for (size_t R = 0; R != Descs.size(); ++R)
    F.TypeRank[Descs[R].second] = static_cast<uint32_t>(R);
  for (TypeId Id = 0; Id != NumTypes; ++Id)
    F.TypeRank[Id] = F.TypeRank[Types.canonical(Id)];

  // --- FieldId -> rank, keyed (owner rank, field name) ---
  FieldId MaxField = 0;
  std::map<std::pair<uint32_t, std::string>, FieldId> FieldKeys;
  for (TypeId Id = 0; Id != NumTypes; ++Id) {
    if (Types.canonical(Id) != Id)
      continue;
    for (const FieldInfo &Fld : Types.get(Id).Fields) {
      MaxField = std::max(MaxField, Fld.Id);
      auto [It, Inserted] = FieldKeys.emplace(
          std::make_pair(F.TypeRank[Id], Fld.Name), Fld.Id);
      if (!Inserted && It->second != Fld.Id)
        return F; // two distinct FieldIds share a canonical key
    }
  }
  F.FieldRank.assign(static_cast<size_t>(MaxField) + 1, ~0u);
  {
    uint32_t R = 0;
    for (const auto &[Key, Id] : FieldKeys)
      F.FieldRank[Id] = R++;
  }

  // --- Canonical key text ---
  std::ostringstream K;
  K << "tbaa-partition-key-v1\n";
  K << "openworld=" << (Opts.OpenWorld ? 1 : 0)
    << " degraded=" << (Degraded ? 1 : 0) << " ntypes=" << Descs.size()
    << "\n";
  for (size_t R = 0; R != Descs.size(); ++R)
    K << "type " << R << ": " << Descs[R].first << "\n";

  // Subtype sets and the selective-merge group partition, both as sorted
  // rank sets. Group labels are the minimum member rank, so the partition
  // is captured independently of which member union-find picked as root.
  std::vector<uint32_t> GroupLabel(NumTypes, ~0u);
  for (size_t R = 0; R != Descs.size(); ++R) {
    TypeId Id = Descs[R].second;
    uint32_t Root = GroupOf[Id];
    if (GroupLabel[Root] > static_cast<uint32_t>(R))
      GroupLabel[Root] = static_cast<uint32_t>(R);
  }
  for (size_t R = 0; R != Descs.size(); ++R) {
    TypeId Id = Descs[R].second;
    K << "sub " << R << ":";
    std::vector<uint32_t> Ranks;
    for (uint32_t M : SubtypeBits[Id].elements())
      Ranks.push_back(F.TypeRank[M]);
    std::sort(Ranks.begin(), Ranks.end());
    for (uint32_t X : Ranks)
      K << " " << X;
    K << "\n";
  }
  for (size_t R = 0; R != Descs.size(); ++R) {
    TypeId Id = Descs[R].second;
    K << "grp " << R << ": " << GroupLabel[GroupOf[Id]] << "\n";
  }

  // Field declarations: rank -> (owner rank, name, value-type rank).
  for (const auto &[Key, Id] : FieldKeys) {
    // Recover the declaring type's value type for this field.
    K << "fld " << F.FieldRank[Id] << ": " << Key.first << " " << Key.second
      << "\n";
  }

  // AddressTaken facts, sorted and deduplicated over ranks.
  std::set<std::pair<uint32_t, uint32_t>> FFacts;
  for (const FieldFact &Fact : FieldFacts)
    FFacts.emplace(F.FieldRank[Fact.Field], F.TypeRank[Fact.BaseType]);
  for (const auto &[FR, TR] : FFacts)
    K << "ftaken " << FR << " " << TR << "\n";
  std::set<uint32_t> EFacts;
  for (TypeId T : ElemFacts)
    EFacts.insert(F.TypeRank[T]);
  for (uint32_t R : EFacts)
    K << "etaken " << R << "\n";
  std::set<uint32_t> ByRef;
  for (TypeId T : ByRefFormalTypes)
    ByRef.insert(F.TypeRank[T]);
  for (uint32_t R : ByRef)
    K << "byref " << R << "\n";

  F.Key = K.str();
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : F.Key) {
    H ^= C;
    H *= 1099511628211ull;
  }
  F.Hash = H ^ (static_cast<uint64_t>(crc32(F.Key.data(), F.Key.size()))
                << 32);
  F.Valid = true;
  return F;
}
