//===- TBAAContext.cpp ----------------------------------------------------===//

#include "core/TBAAContext.h"

#include "support/Budget.h"
#include "support/Remarks.h"
#include "support/Stats.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <cassert>

using namespace tbaa;

TBAA_STATISTIC(NumTypeRefsDropped, "degrade", "typerefs-dropped",
               "SMTypeRefs tables abandoned under budget (fell back to "
               "declared-type compatibility)");

TBAAContext::TBAAContext(const ModuleAST &M, const TypeTable &Types,
                         TBAAOptions Opts)
    : Types(Types), Opts(Opts), NumTypes(Types.size()) {
  assert(Types.isFinalized() && "TBAA requires a finalized type table");

  // --- Subtypes(T) bitsets over canonical ids ---
  SubtypeBits.assign(NumTypes, DynBitset(NumTypes));
  for (TypeId Id = 0; Id != NumTypes; ++Id) {
    if (Types.canonical(Id) != Id)
      continue;
    for (TypeId S : Types.subtypes(Id))
      SubtypeBits[Id].set(Types.canonical(S));
  }

  // --- Step 1 of Figure 2: every type alone in its group ---
  UnionFind Groups(NumTypes);
  UF = &Groups;

  // --- Step 2: one linear pass over the program, merging at pointer
  // assignments (explicit and implicit) ---
  for (const auto &[Sym, Init] : M.GlobalInits) {
    recordAssignment(Sym->Type, Init->ExprType);
    collectFromExpr(*Init);
  }
  for (const auto &P : M.Procs) {
    CurReturnType = P->ReturnType;
    for (const auto &Param : P->Params)
      if (Param->ByRef)
        ByRefFormalTypes.push_back(Types.canonical(Param->Type));
    for (const auto &[Sym, Init] : P->LocalInits) {
      recordAssignment(Sym->Type, Init->ExprType);
      collectFromExpr(*Init);
    }
    collectFromStmtList(P->Body);
  }
  // Implicit receiver assignments: any object of type T whose dispatch
  // table binds procedure Impl may flow into Impl's receiver formal.
  for (TypeId Id = 0; Id != NumTypes; ++Id) {
    const Type &T = Types.get(Id);
    if (T.Kind != TypeKind::Object || Types.canonical(Id) != Id)
      continue;
    for (ProcId Impl : T.DispatchTable) {
      if (Impl == InvalidProcId)
        continue;
      const ProcDecl &P = *M.Procs[Impl];
      assert(!P.Params.empty() && "method impl without receiver");
      recordAssignment(P.Params[0]->Type, Id);
    }
  }
  // Method byref formal types (identical to their impls' formals, but the
  // signature is the source of truth for the open world clause).
  for (TypeId Id = 0; Id != NumTypes; ++Id) {
    const Type &T = Types.get(Id);
    if (T.Kind != TypeKind::Object)
      continue;
    for (const MethodInfo &MI : T.Methods)
      for (const ParamInfo &PI : MI.Params)
        if (PI.ByRef)
          ByRefFormalTypes.push_back(Types.canonical(PI.Type));
  }
  std::sort(ByRefFormalTypes.begin(), ByRefFormalTypes.end());
  ByRefFormalTypes.erase(
      std::unique(ByRefFormalTypes.begin(), ByRefFormalTypes.end()),
      ByRefFormalTypes.end());

  // --- Section 4: unavailable code may assign between any two
  // subtype-related types it can reconstruct (no BRANDED component) ---
  if (Opts.OpenWorld) {
    for (TypeId Id = 0; Id != NumTypes; ++Id) {
      const Type &T = Types.get(Id);
      if (T.Kind != TypeKind::Object || Types.canonical(Id) != Id)
        continue;
      if (!Types.isAccessibleToUnavailableCode(Id))
        continue;
      for (TypeId Cur = T.Super; Cur != InvalidTypeId;
           Cur = Types.get(Cur).Super)
        if (Types.isAccessibleToUnavailableCode(Cur))
          uniteGroups(Id, Cur);
    }
  }

  // --- Step 3: TypeRefsTable(t) = Group(t) ∩ Subtypes(t) ---
  // This is the superlinear part (a row over all types per pointer
  // type), so it pays into the TypeRefs step budget; on exhaustion the
  // half-built tables are abandoned and the accessors fall back to
  // TypeDecl compatibility, which needs only SubtypeBits.
  PhaseBudget &Budget = BudgetRegistry::instance().TypeRefs;
  GroupOf.assign(NumTypes, 0);
  for (TypeId Id = 0; Id != NumTypes; ++Id)
    GroupOf[Id] = Groups.find(Types.canonical(Id));
  TypeRefsBits.assign(NumTypes, DynBitset(NumTypes));
  for (TypeId Id = 0; Id != NumTypes && !Degraded; ++Id) {
    if (Types.canonical(Id) != Id)
      continue;
    if (!Budget.charge(NumTypes)) {
      Degraded = true;
      break;
    }
    DynBitset &Bits = TypeRefsBits[Id];
    if (Types.isReferenceLike(Id)) {
      for (TypeId Other = 0; Other != NumTypes; ++Other)
        if (Types.canonical(Other) == Other && GroupOf[Other] == GroupOf[Id])
          Bits.set(Other);
      Bits &= SubtypeBits[Id];
    } else {
      // Non-pointer types refer only to themselves.
      Bits.set(Id);
    }
  }
  if (Degraded) {
    ++NumTypeRefsDropped;
    RemarkEngine::instance().emit(
        Remark(RemarkKind::Analysis, "degrade", "TypeRefsDropped", SourceLoc{},
               "SMTypeRefs construction exhausted its step budget; answering "
               "with declared-type compatibility instead")
            .arg("budget", std::to_string(Budget.Limit))
            .arg("types", std::to_string(NumTypes)));
  }
  UF = nullptr;
}

void TBAAContext::uniteGroups(TypeId A, TypeId B) {
  assert(UF && "uniteGroups outside construction");
  TypeId CA = Types.canonical(A), CB = Types.canonical(B);
  if (UF->find(CA) == UF->find(CB))
    return;
  UF->unite(CA, CB);
  ++Merges;
}

void TBAAContext::recordAssignment(TypeId Lhs, TypeId Rhs) {
  TypeId L = Types.canonical(Lhs), R = Types.canonical(Rhs);
  if (L == R)
    return;
  if (!Types.isReferenceLike(L) || !Types.isReferenceLike(R))
    return;
  if (Types.get(L).Kind == TypeKind::Nil || Types.get(R).Kind == TypeKind::Nil)
    return;
  uniteGroups(L, R);
}

void TBAAContext::recordAddressTaken(const Expr &Designator) {
  switch (Designator.Kind) {
  case ExprKind::Field: {
    const auto &F = static_cast<const FieldExpr &>(Designator);
    FieldFacts.push_back({F.Field, Types.canonical(F.Base->ExprType)});
    return;
  }
  case ExprKind::Index: {
    const auto &I = static_cast<const IndexExpr &>(Designator);
    ElemFacts.push_back(Types.canonical(I.Base->ExprType));
    return;
  }
  case ExprKind::Name:
  case ExprKind::Deref:
    // Taking a variable's address creates no heap-field fact; taking p^'s
    // address is the identity on p's value.
    return;
  default:
    assert(false && "address of a non-designator");
    return;
  }
}

void TBAAContext::collectFromExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::NilLit:
  case ExprKind::Name:
    return;
  case ExprKind::Field:
    collectFromExpr(*static_cast<const FieldExpr &>(E).Base);
    return;
  case ExprKind::Deref:
    collectFromExpr(*static_cast<const DerefExpr &>(E).Base);
    return;
  case ExprKind::Index: {
    const auto &I = static_cast<const IndexExpr &>(E);
    collectFromExpr(*I.Base);
    collectFromExpr(*I.Idx);
    return;
  }
  case ExprKind::Call: {
    const auto &C = static_cast<const CallExpr &>(E);
    for (size_t K = 0; K != C.Args.size(); ++K) {
      const VarSymbol &Formal = *C.Callee->Params[K];
      if (Formal.ByRef)
        recordAddressTaken(*C.Args[K]);
      else
        recordAssignment(Formal.Type, C.Args[K]->ExprType);
      collectFromExpr(*C.Args[K]);
    }
    return;
  }
  case ExprKind::MethodCall: {
    const auto &C = static_cast<const MethodCallExpr &>(E);
    collectFromExpr(*C.Base);
    const MethodInfo *MI = Types.findMethod(C.ReceiverType, C.MethodName);
    assert(MI && "method vanished after Sema");
    for (size_t K = 0; K != C.Args.size(); ++K) {
      if (MI->Params[K].ByRef)
        recordAddressTaken(*C.Args[K]);
      else
        recordAssignment(MI->Params[K].Type, C.Args[K]->ExprType);
      collectFromExpr(*C.Args[K]);
    }
    return;
  }
  case ExprKind::New: {
    const auto &N = static_cast<const NewExpr &>(E);
    if (N.SizeArg)
      collectFromExpr(*N.SizeArg);
    return;
  }
  case ExprKind::Narrow: {
    // A checked downcast lets Type(e)'s referents flow into TargetType-
    // typed access paths: an implicit assignment for Step 2 of Figure 2.
    const auto &N = static_cast<const NarrowExpr &>(E);
    recordAssignment(N.TargetType, N.Sub->ExprType);
    collectFromExpr(*N.Sub);
    return;
  }
  case ExprKind::IsType:
    collectFromExpr(*static_cast<const IsTypeExpr &>(E).Sub);
    return;
  case ExprKind::NumberOf:
    collectFromExpr(*static_cast<const NumberOfExpr &>(E).Arg);
    return;
  case ExprKind::Unary:
    collectFromExpr(*static_cast<const UnaryExpr &>(E).Sub);
    return;
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    collectFromExpr(*B.Lhs);
    collectFromExpr(*B.Rhs);
    return;
  }
  }
}

void TBAAContext::collectFromStmtList(const StmtList &Stmts) {
  for (const StmtPtr &S : Stmts)
    collectFromStmt(*S);
}

void TBAAContext::collectFromStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Assign: {
    const auto &A = static_cast<const AssignStmt &>(S);
    recordAssignment(A.Lhs->ExprType, A.Rhs->ExprType);
    collectFromExpr(*A.Lhs);
    collectFromExpr(*A.Rhs);
    return;
  }
  case StmtKind::Call:
    collectFromExpr(*static_cast<const CallStmt &>(S).Call);
    return;
  case StmtKind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    for (const auto &[Cond, Body] : I.Arms) {
      collectFromExpr(*Cond);
      collectFromStmtList(Body);
    }
    collectFromStmtList(I.ElseBody);
    return;
  }
  case StmtKind::While: {
    const auto &W = static_cast<const WhileStmt &>(S);
    collectFromExpr(*W.Cond);
    collectFromStmtList(W.Body);
    return;
  }
  case StmtKind::Repeat: {
    const auto &R = static_cast<const RepeatStmt &>(S);
    collectFromStmtList(R.Body);
    collectFromExpr(*R.Cond);
    return;
  }
  case StmtKind::For: {
    const auto &F = static_cast<const ForStmt &>(S);
    collectFromExpr(*F.From);
    collectFromExpr(*F.To);
    collectFromStmtList(F.Body);
    return;
  }
  case StmtKind::Loop:
    collectFromStmtList(static_cast<const LoopStmt &>(S).Body);
    return;
  case StmtKind::Exit:
    return;
  case StmtKind::Return: {
    const auto &R = static_cast<const ReturnStmt &>(S);
    if (R.Value) {
      recordAssignment(CurReturnType, R.Value->ExprType);
      collectFromExpr(*R.Value);
    }
    return;
  }
  case StmtKind::With: {
    const auto &W = static_cast<const WithStmt &>(S);
    if (W.IsAlias)
      recordAddressTaken(*W.Bound);
    else
      recordAssignment(W.Binding->Type, W.Bound->ExprType);
    collectFromExpr(*W.Bound);
    collectFromStmtList(W.Body);
    return;
  }
  case StmtKind::IncDec: {
    // Integer-only read-modify-write: no pointer assignment to merge.
    const auto &I = static_cast<const IncDecStmt &>(S);
    collectFromExpr(*I.Target);
    if (I.Amount)
      collectFromExpr(*I.Amount);
    return;
  }
  case StmtKind::Eval:
    collectFromExpr(*static_cast<const EvalStmt &>(S).Value);
    return;
  case StmtKind::TypeCase: {
    const auto &T = static_cast<const TypeCaseStmt &>(S);
    collectFromExpr(*T.Subject);
    for (const TypeCaseArm &Arm : T.Arms) {
      // Like NARROW: the subject flows into arm-typed access paths.
      recordAssignment(Arm.Target, T.Subject->ExprType);
      collectFromStmtList(Arm.Body);
    }
    collectFromStmtList(T.ElseBody);
    return;
  }
  }
}

const DynBitset &TBAAContext::subtypeSet(TypeId T) const {
  return SubtypeBits[Types.canonical(T)];
}

const DynBitset &TBAAContext::typeRefsSet(TypeId T) const {
  return TypeRefsBits[Types.canonical(T)];
}

bool TBAAContext::typeDeclCompat(TypeId A, TypeId B) const {
  return subtypeSet(A).intersects(subtypeSet(B));
}

bool TBAAContext::typeRefsCompat(TypeId A, TypeId B) const {
  // Degraded: the TypeRefs tables were never finished. TypeDecl
  // compatibility is a superset (TypeRefs(t) ⊆ Subtypes(t)), so this
  // only ever *adds* may-alias answers -- sound for every consumer.
  if (Degraded)
    return typeDeclCompat(A, B);
  return typeRefsSet(A).intersects(typeRefsSet(B));
}

std::vector<TypeId> TBAAContext::typeRefs(TypeId T) const {
  if (Degraded)
    return subtypeSet(T).elements();
  return typeRefsSet(T).elements();
}

bool TBAAContext::addressTakenField(FieldId F, TypeId BaseType,
                                    TypeId FieldValueType,
                                    bool UseTypeRefs) const {
  for (const FieldFact &Fact : FieldFacts) {
    if (Fact.Field != F)
      continue;
    bool Compat = UseTypeRefs ? typeRefsCompat(Fact.BaseType, BaseType)
                              : typeDeclCompat(Fact.BaseType, BaseType);
    if (Compat)
      return true;
  }
  if (Opts.OpenWorld) {
    // Unavailable code may have passed some compatible p.f by reference:
    // M3L requires VAR actual and formal types to be identical.
    TypeId V = Types.canonical(FieldValueType);
    if (std::binary_search(ByRefFormalTypes.begin(), ByRefFormalTypes.end(),
                           V))
      return true;
  }
  return false;
}

bool TBAAContext::addressTakenElem(TypeId ArrayType, TypeId ElemType,
                                   bool UseTypeRefs) const {
  for (TypeId Fact : ElemFacts) {
    bool Compat = UseTypeRefs ? typeRefsCompat(Fact, ArrayType)
                              : typeDeclCompat(Fact, ArrayType);
    if (Compat)
      return true;
  }
  if (Opts.OpenWorld) {
    TypeId V = Types.canonical(ElemType);
    if (std::binary_search(ByRefFormalTypes.begin(), ByRefFormalTypes.end(),
                           V))
      return true;
  }
  return false;
}
