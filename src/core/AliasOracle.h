//===- AliasOracle.h - The three TBAA alias relations -----------*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The may-alias query interface every client (alias-pair census, mod-ref,
/// redundant load elimination, method resolution) is written against, and
/// its implementations:
///
///  * TypeDecl (Section 2.2): two APs may alias iff their declared types
///    are subtype-compatible.
///  * FieldTypeDecl (Section 2.3, Table 2): the seven-case analysis over
///    Qualify/Dereference/Subscript with AddressTaken.
///  * SMTypeRefs / SMFieldTypeRefs (Section 2.4, Figure 2): the previous
///    two with TypeRefsTable compatibility from selective type merging.
///  * Perfect: lexical identity only -- the optimistic oracle used to
///    bound what any alias analysis could give RLE (Section 3.5).
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_CORE_ALIASORACLE_H
#define TBAA_CORE_ALIASORACLE_H

#include "core/TBAAContext.h"
#include "ir/IR.h"

#include <memory>

namespace tbaa {

/// Which analysis answers queries.
enum class AliasLevel : uint8_t {
  TypeDecl,
  FieldTypeDecl,
  SMTypeRefs,
  SMFieldTypeRefs,
  Perfect,
};

const char *aliasLevelName(AliasLevel Level);

/// An access path with its root abstracted away: what interprocedural
/// clients (mod-ref kill sets, the global alias census) compare.
struct AbsLoc {
  SelKind Sel = SelKind::Field;
  FieldId Field = InvalidFieldId;
  TypeId BaseType = InvalidTypeId;  ///< Deref: the target type.
  TypeId ValueType = InvalidTypeId;

  static AbsLoc fromPath(const MemPath &P) {
    AbsLoc L;
    L.Sel = P.Sel;
    L.Field = P.Field;
    L.BaseType = P.BaseType;
    L.ValueType = P.ValueType;
    return L;
  }
  friend bool operator==(const AbsLoc &A, const AbsLoc &B) {
    return A.Sel == B.Sel && A.Field == B.Field && A.BaseType == B.BaseType &&
           A.ValueType == B.ValueType;
  }
};

/// May-alias oracle. Implementations must be conservative: answering
/// false promises the two references never touch the same location.
class AliasOracle {
public:
  virtual ~AliasOracle();

  /// May two lexical access paths (same procedure) overlap?
  virtual bool mayAlias(const MemPath &A, const MemPath &B) const = 0;

  /// May two root-abstracted locations (possibly in different procedures)
  /// overlap? Used for mod-ref kills and the interprocedural census.
  virtual bool mayAliasAbs(const AbsLoc &A, const AbsLoc &B) const = 0;

  virtual AliasLevel level() const = 0;
  const char *name() const { return aliasLevelName(level()); }
};

/// Builds an oracle of the given level over shared TBAA facts. The
/// Perfect level ignores \p Ctx (pass any context).
std::unique_ptr<AliasOracle> makeAliasOracle(const TBAAContext &Ctx,
                                             AliasLevel Level);

} // namespace tbaa

#endif // TBAA_CORE_ALIASORACLE_H
