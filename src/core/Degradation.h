//===- Degradation.h - Budgeted precision-ladder oracle ---------*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TBAA variants form a precision ladder (AutoAlias makes the same
/// observation for its analyses): every coarser rung answers may-alias
/// for a superset of the pairs the finer rung does. DegradingOracle
/// exploits that for graceful degradation under resource pressure: it
/// answers at the requested level while charging one step per query to
/// the BudgetRegistry Oracle budget, and when the budget runs out it
/// drops one rung --
///
///     SMFieldTypeRefs -> FieldTypeDecl -> TypeDecl (floor)
///     SMTypeRefs      -> TypeDecl
///
/// -- refills the budget, and keeps answering. Dropping a rung only ever
/// *adds* may-alias answers, so clients stay sound and merely miss
/// optimizations; each downgrade emits a remark and a statistic.
///
/// IMPORTANT: clients that iterate to a fixpoint and then re-walk (RLE's
/// availability dataflow) need each (pair -> verdict) answer to stay
/// stable within one run. Always use makeDegradingOracle(), which wraps
/// the ladder in InstrumentedOracle: its memo cache pins every answer
/// the first time it is given, making mid-run downgrades invisible to
/// the client's already-computed state.
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_CORE_DEGRADATION_H
#define TBAA_CORE_DEGRADATION_H

#include "core/AliasOracle.h"
#include "core/InstrumentedOracle.h"

#include <array>
#include <memory>

namespace tbaa {

/// The ladder-walking oracle. level() reports the *current* rung.
class DegradingOracle : public AliasOracle {
public:
  DegradingOracle(const TBAAContext &Ctx, AliasLevel Level);

  bool mayAlias(const MemPath &A, const MemPath &B) const override;
  bool mayAliasAbs(const AbsLoc &A, const AbsLoc &B) const override;
  AliasLevel level() const override { return Cur; }

  /// Rungs dropped so far (0 while the budget holds).
  unsigned downgrades() const { return Downgrades; }

private:
  void chargeQuery() const;

  const TBAAContext &Ctx;
  mutable AliasLevel Cur;
  /// Rung oracles, built on first visit and kept for the session: a
  /// downgrade switches Inner to a cached rung instead of rebuilding
  /// from scratch, so budget fallback never reconstructs per-level
  /// state it already paid for. Indexed by AliasLevel.
  mutable std::array<std::unique_ptr<AliasOracle>, 5> Rungs;
  mutable AliasOracle *Inner = nullptr;
  mutable unsigned Downgrades = 0;

  AliasOracle &rung(AliasLevel L) const;
};

/// A DegradingOracle at \p Level wrapped in the memoizing counter
/// decorator (answer stability; see file comment).
std::unique_ptr<InstrumentedOracle>
makeDegradingOracle(const TBAAContext &Ctx, AliasLevel Level);

} // namespace tbaa

#endif // TBAA_CORE_DEGRADATION_H
