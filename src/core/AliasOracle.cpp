//===- AliasOracle.cpp ----------------------------------------------------===//

#include "core/AliasOracle.h"

#include <cassert>

using namespace tbaa;

AliasOracle::~AliasOracle() = default;

const char *tbaa::aliasLevelName(AliasLevel Level) {
  switch (Level) {
  case AliasLevel::TypeDecl:
    return "TypeDecl";
  case AliasLevel::FieldTypeDecl:
    return "FieldTypeDecl";
  case AliasLevel::SMTypeRefs:
    return "SMTypeRefs";
  case AliasLevel::SMFieldTypeRefs:
    return "SMFieldTypeRefs";
  case AliasLevel::Perfect:
    return "Perfect";
  }
  return "?";
}

namespace {

/// TypeDecl / FieldTypeDecl / SMTypeRefs / SMFieldTypeRefs.
class TBAAOracle : public AliasOracle {
public:
  TBAAOracle(const TBAAContext &Ctx, AliasLevel Level)
      : Ctx(Ctx), Level(Level) {
    assert(Level != AliasLevel::Perfect && "use PerfectOracle");
  }

  bool mayAlias(const MemPath &A, const MemPath &B) const override {
    if (A == B)
      return true; // Case 1 of Table 2: identical APs always alias.
    return mayAliasAbs(AbsLoc::fromPath(A), AbsLoc::fromPath(B));
  }

  bool mayAliasAbs(const AbsLoc &A, const AbsLoc &B) const override {
    bool UseFields = Level == AliasLevel::FieldTypeDecl ||
                     Level == AliasLevel::SMFieldTypeRefs;
    if (!UseFields) {
      // TypeDecl (Section 2.2): only the declared type of the whole AP
      // matters -- two references may alias iff a location of one type
      // may be a location of the other.
      return compat(A.ValueType, B.ValueType);
    }
    return fieldCases(A, B);
  }

  AliasLevel level() const override { return Level; }

private:
  bool useTypeRefs() const {
    return Level == AliasLevel::SMTypeRefs ||
           Level == AliasLevel::SMFieldTypeRefs;
  }
  bool compat(TypeId X, TypeId Y) const {
    return useTypeRefs() ? Ctx.typeRefsCompat(X, Y)
                         : Ctx.typeDeclCompat(X, Y);
  }

  /// Table 2, symmetric dispatch on the selector kinds.
  bool fieldCases(const AbsLoc &A, const AbsLoc &B) const {
    // Normalize so Sel order is Field <= Deref <= Index <= Len.
    if (static_cast<int>(A.Sel) > static_cast<int>(B.Sel))
      return fieldCases(B, A);

    switch (A.Sel) {
    case SelKind::Field:
      switch (B.Sel) {
      case SelKind::Field:
        // Case 2: p.f and q.g alias iff f = g and p, q may reference the
        // same object (TypeDecl on the bases).
        return A.Field == B.Field && compat(A.BaseType, B.BaseType);
      case SelKind::Deref:
        // Case 3: a dereference reaches a field only if some compatible
        // field address was taken and the types agree.
        return Ctx.addressTakenField(A.Field, A.BaseType, A.ValueType,
                                     useTypeRefs()) &&
               compat(A.ValueType, B.ValueType);
      case SelKind::Index:
        return false; // Case 5: qualify never aliases subscript.
      case SelKind::Len:
        return false; // The dope word is not a source-visible field.
      }
      return false;
    case SelKind::Deref:
      switch (B.Sel) {
      case SelKind::Deref:
        // Case 7 via TypeDecl: both are arbitrary locations of their
        // target types.
        return compat(A.ValueType, B.ValueType);
      case SelKind::Index:
        // Case 4: mirror of case 3 for array elements.
        return Ctx.addressTakenElem(B.BaseType, B.ValueType, useTypeRefs()) &&
               compat(A.ValueType, B.ValueType);
      case SelKind::Len:
        return false; // Cannot take the address of NUMBER(a).
      default:
        return false;
      }
    case SelKind::Index:
      switch (B.Sel) {
      case SelKind::Index:
        // Case 6: two subscripts alias iff the arrays may be the same
        // (subscript values are ignored).
        return compat(A.BaseType, B.BaseType);
      case SelKind::Len:
        return false; // Elements never overlap the dope word.
      default:
        return false;
      }
    case SelKind::Len:
      // Two dope reads alias iff the arrays may be the same.
      return B.Sel == SelKind::Len && compat(A.BaseType, B.BaseType);
    }
    return false;
  }

  const TBAAContext &Ctx;
  AliasLevel Level;
};

/// Lexical identity: the optimistic bound of Section 3.5. Never used to
/// transform code that then runs; only to bound what RLE could gain from
/// a more precise analysis.
class PerfectOracle : public AliasOracle {
public:
  bool mayAlias(const MemPath &A, const MemPath &B) const override {
    return A == B;
  }
  bool mayAliasAbs(const AbsLoc &A, const AbsLoc &B) const override {
    return A == B;
  }
  AliasLevel level() const override { return AliasLevel::Perfect; }
};

} // namespace

std::unique_ptr<AliasOracle> tbaa::makeAliasOracle(const TBAAContext &Ctx,
                                                   AliasLevel Level) {
  if (Level == AliasLevel::Perfect)
    return std::make_unique<PerfectOracle>();
  return std::make_unique<TBAAOracle>(Ctx, Level);
}
