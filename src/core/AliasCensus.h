//===- AliasCensus.h - Static alias-pair counting (Table 5) -----*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The traditional static metric of Section 3.3: for every pair of heap
/// memory references, ask the oracle whether they may alias. "Local" pairs
/// live in the same procedure; "global" pairs range over the whole
/// program. Each reference trivially aliases itself, so self-pairs are
/// excluded. This is the O(e^2) client of Section 2.5.
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_CORE_ALIASCENSUS_H
#define TBAA_CORE_ALIASCENSUS_H

#include "core/AliasOracle.h"
#include "ir/IR.h"

namespace tbaa {

struct CensusResult {
  /// Number of heap memory reference sites (LoadMem/StoreMem).
  uint64_t References = 0;
  /// May-alias pairs within one procedure ("L Alias" of Table 5).
  uint64_t LocalPairs = 0;
  /// May-alias pairs program-wide ("G Alias" of Table 5).
  uint64_t GlobalPairs = 0;

  double localPerReference() const {
    return References ? 2.0 * static_cast<double>(LocalPairs) /
                            static_cast<double>(References)
                      : 0.0;
  }
  double globalPerReference() const {
    return References ? 2.0 * static_cast<double>(GlobalPairs) /
                            static_cast<double>(References)
                      : 0.0;
  }
};

/// Counts may-alias pairs over every memory reference of \p M under
/// \p Oracle. Synthetic functions ($globals) are included; they contain
/// source-level initializer references.
CensusResult countAliasPairs(const IRModule &M, const AliasOracle &Oracle);

class AliasClassEngine;

/// Class-engine census: identical numbers to the pairwise walk above,
/// but counted by multiplicity. References collapse onto the engine's
/// dense abstract locations (and, within a procedure, onto lexical path
/// groups), so the verdict matrix is consulted once per *distinct*
/// location pair and each verdict is multiplied by the pair population
/// -- O(refs + distinct^2) oracle-free work instead of O(refs^2)
/// queries.
CensusResult countAliasPairs(const IRModule &M, const AliasClassEngine &Engine,
                             const AliasOracle &Oracle);

} // namespace tbaa

#endif // TBAA_CORE_ALIASCENSUS_H
