//===- PartitionCache.cpp -------------------------------------------------===//

#include "core/PartitionCache.h"

#include "support/CRC32.h"
#include "support/FaultInjector.h"
#include "support/Stats.h"

#include <algorithm>
#include <cstring>
#include <sys/mman.h>
#include <unistd.h>

using namespace tbaa;

TBAA_STATISTIC(NumPcacheHit, "engine", "partition-cache-hit",
               "partition-cache lookups served from a cached entry");
TBAA_STATISTIC(NumPcacheMiss, "engine", "partition-cache-miss",
               "partition-cache lookups that fell back to a fresh build "
               "(includes torn/corrupt/non-covering entries)");
TBAA_STATISTIC(NumPcacheEvict, "engine", "partition-cache-evict",
               "cached partition entries evicted (LRU or generational wipe)");
TBAA_STATISTIC(NumPcacheBytes, "engine", "partition-cache-bytes",
               "serialized partition bytes published to the cache "
               "(cumulative)");

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

constexpr char Magic[4] = {'P', 'C', 'E', '1'};

template <typename T> void appendRaw(std::string &Out, const T &V) {
  Out.append(reinterpret_cast<const char *>(&V), sizeof(T));
}

template <typename T>
bool readRaw(const char *Data, size_t Len, size_t &Off, T &V) {
  if (Off + sizeof(T) > Len)
    return false;
  std::memcpy(&V, Data + Off, sizeof(T));
  Off += sizeof(T);
  return true;
}

} // namespace

std::string tbaa::serializePartitionEntry(const PartitionCacheEntry &E) {
  std::string Out;
  Out.append(Magic, sizeof(Magic));
  appendRaw(Out, E.Hash);
  appendRaw(Out, E.Level);
  appendRaw(Out, static_cast<uint32_t>(E.Key.size()));
  Out.append(E.Key);
  appendRaw(Out, static_cast<uint32_t>(E.Universe.size()));
  for (const CanonLoc &L : E.Universe) {
    appendRaw(Out, L.Sel);
    appendRaw(Out, L.Field);
    appendRaw(Out, L.Base);
    appendRaw(Out, L.Value);
  }
  for (uint64_t W : E.RowWords)
    appendRaw(Out, W);
  appendRaw(Out, crc32(Out.data(), Out.size()));
  return Out;
}

bool tbaa::deserializePartitionEntry(const char *Data, size_t Len,
                                     PartitionCacheEntry &Out) {
  if (Len < sizeof(Magic) + sizeof(uint32_t) ||
      std::memcmp(Data, Magic, sizeof(Magic)) != 0)
    return false;
  uint32_t StoredCrc;
  std::memcpy(&StoredCrc, Data + Len - sizeof(uint32_t), sizeof(uint32_t));
  if (crc32(Data, Len - sizeof(uint32_t)) != StoredCrc)
    return false;
  size_t Off = sizeof(Magic);
  uint32_t KeyLen = 0, NumLocs = 0;
  if (!readRaw(Data, Len, Off, Out.Hash) || !readRaw(Data, Len, Off, Out.Level) ||
      !readRaw(Data, Len, Off, KeyLen))
    return false;
  if (Off + KeyLen > Len)
    return false;
  Out.Key.assign(Data + Off, KeyLen);
  Off += KeyLen;
  if (!readRaw(Data, Len, Off, NumLocs))
    return false;
  // Bound before allocating: the rest of the buffer must hold exactly the
  // universe, the row words, and the CRC.
  size_t WordsPerRow = (static_cast<size_t>(NumLocs) + 63) / 64;
  size_t Need = static_cast<size_t>(NumLocs) * 4 * sizeof(uint32_t) +
                static_cast<size_t>(NumLocs) * WordsPerRow * sizeof(uint64_t) +
                sizeof(uint32_t);
  if (Len - Off != Need)
    return false;
  Out.Universe.resize(NumLocs);
  for (CanonLoc &L : Out.Universe) {
    readRaw(Data, Len, Off, L.Sel);
    readRaw(Data, Len, Off, L.Field);
    readRaw(Data, Len, Off, L.Base);
    readRaw(Data, Len, Off, L.Value);
  }
  if (!std::is_sorted(Out.Universe.begin(), Out.Universe.end()) ||
      std::adjacent_find(Out.Universe.begin(), Out.Universe.end()) !=
          Out.Universe.end())
    return false;
  Out.RowWords.resize(static_cast<size_t>(NumLocs) * WordsPerRow);
  for (uint64_t &W : Out.RowWords)
    readRaw(Data, Len, Off, W);
  return true;
}

std::string tbaa::hexEncode(const std::string &Bytes) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(Bytes.size() * 2);
  for (unsigned char C : Bytes) {
    Out += Digits[C >> 4];
    Out += Digits[C & 15];
  }
  return Out;
}

bool tbaa::hexDecode(const std::string &Hex, std::string &Out) {
  if (Hex.size() % 2)
    return false;
  Out.clear();
  Out.reserve(Hex.size() / 2);
  auto Nibble = [](char C) -> int {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    return -1;
  };
  for (size_t I = 0; I < Hex.size(); I += 2) {
    int Hi = Nibble(Hex[I]), Lo = Nibble(Hex[I + 1]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out += static_cast<char>(Hi << 4 | Lo);
  }
  return true;
}

bool tbaa::universeCovers(const std::vector<CanonLoc> &Universe,
                          const std::vector<CanonLoc> &Needed) {
  return std::includes(Universe.begin(), Universe.end(), Needed.begin(),
                       Needed.end());
}

//===----------------------------------------------------------------------===//
// ProcPartitionCache
//===----------------------------------------------------------------------===//

bool ProcPartitionCache::lookup(uint64_t Hash, const std::string &Key,
                                uint8_t Level,
                                const std::vector<CanonLoc> &Needed,
                                PartitionCacheEntry &Out) const {
  std::lock_guard<std::mutex> G(Mu);
  for (auto It = Entries.begin(); It != Entries.end(); ++It) {
    if (It->Hash != Hash || It->Level != Level || It->Key != Key ||
        !universeCovers(It->Universe, Needed))
      continue;
    Out = *It;
    Entries.splice(Entries.begin(), Entries, It);
    return true;
  }
  return false;
}

void ProcPartitionCache::publish(const PartitionCacheEntry &E) {
  std::lock_guard<std::mutex> G(Mu);
  for (auto It = Entries.begin(); It != Entries.end(); ++It) {
    if (It->Hash == E.Hash && It->Level == E.Level && It->Key == E.Key &&
        It->Universe == E.Universe) {
      Used -= It->approxBytes();
      Entries.erase(It);
      break;
    }
  }
  Entries.push_front(E);
  Used += E.approxBytes();
  while (Used > Cap && Entries.size() > 1) {
    Used -= Entries.back().approxBytes();
    Entries.pop_back();
    ++NumPcacheEvict;
  }
}

size_t ProcPartitionCache::bytesUsed() const {
  std::lock_guard<std::mutex> G(Mu);
  return Used;
}

size_t ProcPartitionCache::entryCount() const {
  std::lock_guard<std::mutex> G(Mu);
  return Entries.size();
}

//===----------------------------------------------------------------------===//
// SharedPartitionSegment
//===----------------------------------------------------------------------===//

std::unique_ptr<SharedPartitionSegment>
SharedPartitionSegment::create(size_t CapacityBytes) {
  size_t Len = sizeof(Header) + CapacityBytes;
  void *P = ::mmap(nullptr, Len, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return nullptr;
  auto Seg = std::unique_ptr<SharedPartitionSegment>(new SharedPartitionSegment);
  Seg->Base = static_cast<char *>(P);
  Seg->MapLen = Len;
  Seg->Owner = ::getpid();
  Header *H = new (Seg->Base) Header;
  H->Generation.store(0, std::memory_order_relaxed);
  H->Used.store(0, std::memory_order_relaxed);
  H->Capacity = CapacityBytes;
  H->EntriesThisGen = 0;
  return Seg;
}

SharedPartitionSegment::~SharedPartitionSegment() {
  if (Base)
    ::munmap(Base, MapLen);
}

bool SharedPartitionSegment::publish(const std::string &Bytes) {
  fault::Action A = fault::at("cache.publish");
  if (A == fault::Action::Enospc || A == fault::Action::Eagain)
    return false; // nothing written: consumers simply rebuild
  Header *H = header();
  uint64_t Frame = 8 + ((Bytes.size() + 7) & ~uint64_t(7));
  uint64_t Used = H->Used.load(std::memory_order_relaxed);
  if (Used + Frame > H->Capacity) {
    // Generational wipe. Readers re-check Generation after copying a
    // candidate out, so a racing lookup degrades to a miss.
    H->Generation.fetch_add(1, std::memory_order_release);
    H->Used.store(0, std::memory_order_release);
    NumPcacheEvict += H->EntriesThisGen;
    H->EntriesThisGen = 0;
    Used = 0;
    if (Frame > H->Capacity)
      return false;
  }
  char *Dst = data() + Used;
  uint64_t Len = Bytes.size();
  std::memcpy(Dst, &Len, sizeof(Len));
  // 'short'/'kill' tear the entry mid-copy but still advance Used: the
  // torn bytes become visible and only the CRC check stands between them
  // and a consumer -- exactly the hazard the chaos drill probes.
  size_t Copy =
      (A == fault::Action::ShortWrite || A == fault::Action::Kill)
          ? Bytes.size() / 2
          : Bytes.size();
  std::memcpy(Dst + 8, Bytes.data(), Copy);
  H->Used.store(Used + Frame, std::memory_order_release);
  if (A == fault::Action::Kill)
    fault::killSelf();
  if (Copy != Bytes.size())
    return false;
  ++H->EntriesThisGen;
  return true;
}

bool SharedPartitionSegment::lookup(uint64_t Hash, const std::string &Key,
                                    uint8_t Level,
                                    const std::vector<CanonLoc> &Needed,
                                    PartitionCacheEntry &Out) const {
  const Header *H = header();
  uint64_t Gen0 = H->Generation.load(std::memory_order_acquire);
  uint64_t Used = H->Used.load(std::memory_order_acquire);
  if (Used > H->Capacity)
    return false;
  bool Found = false;
  uint64_t Off = 0;
  while (Off + 8 <= Used) {
    uint64_t Len;
    std::memcpy(&Len, data() + Off, sizeof(Len));
    uint64_t Frame = 8 + ((Len + 7) & ~uint64_t(7));
    if (Len == 0 || Off + Frame > Used)
      break; // torn tail
    PartitionCacheEntry Tmp;
    if (deserializePartitionEntry(data() + Off + 8, Len, Tmp) &&
        Tmp.Hash == Hash && Tmp.Level == Level && Tmp.Key == Key &&
        universeCovers(Tmp.Universe, Needed)) {
      Out = std::move(Tmp); // keep scanning: later entries are newer
      Found = true;
    }
    Off += Frame;
  }
  // A wipe that raced the scan may have rewritten bytes mid-copy; the
  // CRC makes silent corruption astronomically unlikely, the generation
  // check makes it impossible.
  if (H->Generation.load(std::memory_order_acquire) != Gen0)
    return false;
  return Found;
}

void SharedPartitionSegment::sealReadOnly() {
  ::mprotect(Base, MapLen, PROT_READ);
}

uint64_t SharedPartitionSegment::generation() const {
  return header()->Generation.load(std::memory_order_acquire);
}

size_t SharedPartitionSegment::entryCount() const {
  return header()->EntriesThisGen;
}

size_t SharedPartitionSegment::bytesUsed() const {
  return header()->Used.load(std::memory_order_acquire);
}

//===----------------------------------------------------------------------===//
// PartitionCacheRuntime
//===----------------------------------------------------------------------===//

bool tbaa::parsePartitionCacheMode(const std::string &Text,
                                   PartitionCacheMode &M) {
  if (Text == "off")
    M = PartitionCacheMode::Off;
  else if (Text == "proc")
    M = PartitionCacheMode::Proc;
  else if (Text == "shared")
    M = PartitionCacheMode::Shared;
  else
    return false;
  return true;
}

const char *tbaa::partitionCacheModeName(PartitionCacheMode M) {
  switch (M) {
  case PartitionCacheMode::Off:
    return "off";
  case PartitionCacheMode::Proc:
    return "proc";
  case PartitionCacheMode::Shared:
    return "shared";
  }
  return "off";
}

PartitionCacheRuntime &PartitionCacheRuntime::instance() {
  static PartitionCacheRuntime R;
  return R;
}

void PartitionCacheRuntime::configure(PartitionCacheMode M, size_t CapBytes) {
  ProcCache.reset();
  Seg.reset();
  {
    std::lock_guard<std::mutex> G(PendingMu);
    Pending.clear();
  }
  Sealed = false;
  Mode = M;
  Cap = CapBytes ? CapBytes : DefaultCapBytes;
  OwnerPid = ::getpid();
  if (Mode == PartitionCacheMode::Proc) {
    ProcCache = std::make_unique<ProcPartitionCache>(Cap);
  } else if (Mode == PartitionCacheMode::Shared) {
    Seg = SharedPartitionSegment::create(Cap);
    if (!Seg)
      Mode = PartitionCacheMode::Off; // mmap failed: degrade to no cache
  }
}

bool PartitionCacheRuntime::lookup(uint64_t Hash, const std::string &Key,
                                   uint8_t Level,
                                   const std::vector<CanonLoc> &Needed,
                                   PartitionCacheEntry &Out) {
  bool Hit = false;
  if (Mode == PartitionCacheMode::Proc && ProcCache)
    Hit = ProcCache->lookup(Hash, Key, Level, Needed, Out);
  else if (Mode == PartitionCacheMode::Shared && Seg)
    Hit = Seg->lookup(Hash, Key, Level, Needed, Out);
  else
    return false; // disabled: not a countable miss
  if (Hit)
    ++NumPcacheHit;
  else
    ++NumPcacheMiss;
  return Hit;
}

void PartitionCacheRuntime::publish(const PartitionCacheEntry &E) {
  if (Mode == PartitionCacheMode::Proc && ProcCache) {
    ProcCache->publish(E);
    NumPcacheBytes += E.approxBytes();
  } else if (Mode == PartitionCacheMode::Shared && Seg) {
    std::string Bytes = serializePartitionEntry(E);
    if (::getpid() == OwnerPid) {
      if (Seg->publish(Bytes))
        NumPcacheBytes += Bytes.size();
    } else {
      // Forked worker: the segment is sealed read-only here. Queue the
      // entry for the job payload; the parent publishes on settle.
      std::lock_guard<std::mutex> G(PendingMu);
      Pending.push_back(std::move(Bytes));
    }
  }
}

bool PartitionCacheRuntime::publishSerialized(const std::string &Bytes) {
  if (Mode != PartitionCacheMode::Shared || !Seg)
    return false;
  PartitionCacheEntry Check;
  if (!deserializePartitionEntry(Bytes.data(), Bytes.size(), Check))
    return false; // corrupted in transit: drop, consumers rebuild
  if (!Seg->publish(Bytes))
    return false;
  NumPcacheBytes += Bytes.size();
  return true;
}

std::vector<std::string> PartitionCacheRuntime::drainPendingHex() {
  std::lock_guard<std::mutex> G(PendingMu);
  std::vector<std::string> Out;
  Out.reserve(Pending.size());
  for (const std::string &Bytes : Pending)
    Out.push_back(hexEncode(Bytes));
  Pending.clear();
  return Out;
}

void PartitionCacheRuntime::sealWorkerView() {
  if (Seg && !Sealed && ::getpid() != OwnerPid) {
    Seg->sealReadOnly();
    Sealed = true;
  }
}
