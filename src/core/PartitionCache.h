//===- PartitionCache.h - Cross-worker alias-partition cache ----*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A read-mostly cache of `AliasClassEngine` partitions keyed on the
/// canonical type-table fingerprint (TBAAContext::fingerprint). TBAA's
/// verdicts are flow-insensitive pure functions of the context facts, so
/// a partition built for one module can be *rebound* to any other module
/// whose context fingerprints identically -- the `--gen` sweep case where
/// hundreds of modules share one type shape.
///
/// Entries store the alias matrix over a *canonical* location space
/// (`CanonLoc`: the AbsLoc tuple with TypeIds replaced by fingerprint
/// ranks and FieldIds by field ranks), because dense LocIds are
/// module-local. A consumer rebinds by mapping each of its interned locs
/// into the entry's sorted universe; the entry applies when its universe
/// is a superset of the consumer's locs.
///
/// Two backing stores:
///  * ProcPartitionCache -- an in-process LRU-by-bytes list. Used by
///    m3lc (`--partition-cache=proc`) and the m3serve warm workers,
///    which survive across re-sandboxed jobs.
///  * SharedPartitionSegment -- a parent-owned anonymous MAP_SHARED
///    mmap for m3batch's fork-per-job workers. Only the parent writes
///    (workers send serialized entries home in the job payload and the
///    parent publishes them); workers map the pages read-only
///    (sealWorkerView), so the fault-isolation boundary holds. Readers
///    validate a per-entry CRC and a generation counter, so a torn or
///    concurrently-wiped entry degrades to a rebuild, never a wrong
///    answer. Publication sits behind the `cache.publish` fault point.
///
/// `PartitionCacheRuntime` is the process-wide front door the drivers
/// configure (`--partition-cache=off|proc|shared`) and the engine
/// consults. Finite `--analysis-budget` runs bypass the cache entirely
/// (AnalysisManager checks this): skipping the build's oracle queries
/// would change budget accounting and thus the degradation ladder.
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_CORE_PARTITIONCACHE_H
#define TBAA_CORE_PARTITIONCACHE_H

#include <atomic>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <sys/types.h>
#include <vector>

namespace tbaa {

/// A module-independent abstract location: AbsLoc with every TypeId
/// replaced by its fingerprint rank and the FieldId by its field rank
/// (~0u where AbsLoc uses the invalid sentinel). Ordered so entry
/// universes can be sorted and binary-searched.
struct CanonLoc {
  uint32_t Sel = 0;
  uint32_t Field = ~0u;
  uint32_t Base = ~0u;
  uint32_t Value = ~0u;

  friend bool operator==(const CanonLoc &, const CanonLoc &) = default;
  friend auto operator<=>(const CanonLoc &, const CanonLoc &) = default;
};

/// One cached partition: the symmetric may-alias matrix for one
/// (fingerprint, level) over a sorted canonical-loc universe, rows
/// bit-packed 64 locs per word.
struct PartitionCacheEntry {
  uint64_t Hash = 0;
  std::string Key; ///< full fingerprint key (collision check)
  uint8_t Level = 0;
  std::vector<CanonLoc> Universe; ///< sorted ascending, pairwise distinct
  std::vector<uint64_t> RowWords; ///< Universe.size() * wordsPerRow()

  size_t wordsPerRow() const { return (Universe.size() + 63) / 64; }
  bool rowBit(size_t I, size_t J) const {
    return (RowWords[I * wordsPerRow() + J / 64] >> (J % 64)) & 1;
  }
  void setRowBit(size_t I, size_t J) {
    RowWords[I * wordsPerRow() + J / 64] |= uint64_t(1) << (J % 64);
  }
  /// In-memory footprint estimate for LRU accounting.
  size_t approxBytes() const {
    return sizeof(*this) + Key.size() + Universe.size() * sizeof(CanonLoc) +
           RowWords.size() * sizeof(uint64_t);
  }
};

/// Serializes \p E into the compact "PCE1" wire form: magic, hash,
/// level, key, universe, row words, CRC-32 trailer over everything
/// before it.
std::string serializePartitionEntry(const PartitionCacheEntry &E);

/// Parses and fully validates (magic, bounds, CRC) a serialized entry.
/// Returns false on any corruption -- the torn-cache degrade path.
bool deserializePartitionEntry(const char *Data, size_t Len,
                               PartitionCacheEntry &Out);

/// Lowercase-hex transport coding for carrying serialized entries inside
/// the flat JSON job payload.
std::string hexEncode(const std::string &Bytes);
bool hexDecode(const std::string &Hex, std::string &Out);

/// True when sorted \p Universe contains every loc of sorted \p Needed.
bool universeCovers(const std::vector<CanonLoc> &Universe,
                    const std::vector<CanonLoc> &Needed);

/// In-process LRU-by-bytes entry store (mutex-guarded; warm workers run
/// jobs one at a time but the parallel-opt pipeline may share it).
class ProcPartitionCache {
public:
  explicit ProcPartitionCache(size_t CapBytes) : Cap(CapBytes) {}

  /// Copies the newest matching, covering entry into \p Out and marks it
  /// most-recently-used. Counts nothing; the runtime owns the counters.
  bool lookup(uint64_t Hash, const std::string &Key, uint8_t Level,
              const std::vector<CanonLoc> &Needed,
              PartitionCacheEntry &Out) const;

  /// Inserts (or replaces) an entry at the MRU end and evicts LRU
  /// entries past the byte cap, bumping engine.partition-cache-evict.
  void publish(const PartitionCacheEntry &E);

  size_t bytesUsed() const;
  size_t entryCount() const;

private:
  mutable std::mutex Mu;
  mutable std::list<PartitionCacheEntry> Entries; ///< MRU at front
  size_t Used = 0;
  size_t Cap;
};

/// Parent-owned anonymous shared mapping for fork-isolated batch
/// workers. Single writer (the creating process), lock-free readers.
///
/// Layout: a Header (generation + used-bytes, both atomics published
/// with release stores) followed by 8-aligned frames of
/// [u64 payload-len][serialized entry][pad]. Readers acquire-load Used,
/// walk frames below it, CRC-validate each candidate, and finally
/// re-check Generation: if a capacity wipe raced the scan, the result is
/// discarded (a miss). When an entry does not fit, the writer bumps
/// Generation and resets Used -- a generational wipe counted as
/// evictions.
class SharedPartitionSegment {
public:
  static std::unique_ptr<SharedPartitionSegment> create(size_t CapacityBytes);
  ~SharedPartitionSegment();

  SharedPartitionSegment(const SharedPartitionSegment &) = delete;
  SharedPartitionSegment &operator=(const SharedPartitionSegment &) = delete;

  /// Parent only. Appends a serialized entry (behind the cache.publish
  /// fault point). Returns false when the publish was skipped, torn, or
  /// the entry can never fit.
  bool publish(const std::string &Bytes);

  /// Any process. See the class comment for the torn/wipe protocol.
  bool lookup(uint64_t Hash, const std::string &Key, uint8_t Level,
              const std::vector<CanonLoc> &Needed,
              PartitionCacheEntry &Out) const;

  /// Remaps this process's view read-only (per-process page permissions:
  /// the parent's writable view is unaffected). Workers call this once
  /// after fork so a stray store faults instead of corrupting the cache.
  void sealReadOnly();

  pid_t ownerPid() const { return Owner; }
  uint64_t generation() const;
  size_t entryCount() const; ///< parent bookkeeping, current generation
  size_t bytesUsed() const;

private:
  SharedPartitionSegment() = default;

  struct Header {
    std::atomic<uint64_t> Generation;
    std::atomic<uint64_t> Used; ///< entry bytes beyond the header
    uint64_t Capacity;          ///< entry bytes available
    uint64_t EntriesThisGen;    ///< parent-only bookkeeping
  };
  Header *header() const { return reinterpret_cast<Header *>(Base); }
  char *data() const { return Base + sizeof(Header); }

  char *Base = nullptr;
  size_t MapLen = 0;
  pid_t Owner = 0;
};

enum class PartitionCacheMode : uint8_t { Off, Proc, Shared };

bool parsePartitionCacheMode(const std::string &Text, PartitionCacheMode &M);
const char *partitionCacheModeName(PartitionCacheMode M);

/// Process-wide cache front door. Drivers configure it once before any
/// compilation (and, for shared mode, before forking workers); the
/// engine consults it via lookup/publish. All four
/// engine.partition-cache-* counters are owned here.
class PartitionCacheRuntime {
public:
  static PartitionCacheRuntime &instance();

  /// (Re)configures the mode and byte cap. Off tears everything down.
  /// CapBytes == 0 selects the 64 MiB default.
  void configure(PartitionCacheMode M, size_t CapBytes = 0);

  PartitionCacheMode mode() const { return Mode; }
  bool enabled() const { return Mode != PartitionCacheMode::Off; }
  size_t capacityBytes() const { return Cap; }

  /// Consults the configured store. Counts engine.partition-cache-hit /
  /// -miss (torn, corrupt, non-covering and racing-wipe entries all land
  /// on the miss side). No-op returning false when disabled.
  bool lookup(uint64_t Hash, const std::string &Key, uint8_t Level,
              const std::vector<CanonLoc> &Needed, PartitionCacheEntry &Out);

  /// Publishes a freshly built partition. Proc mode inserts directly.
  /// Shared mode: the owning process appends to the segment; a forked
  /// worker queues the serialized entry for the job payload instead
  /// (drainPendingHex), preserving the workers-never-write invariant.
  void publish(const PartitionCacheEntry &E);

  /// Parent side of the payload hand-off: validates \p Bytes and
  /// appends it to the shared segment. Counts published bytes.
  bool publishSerialized(const std::string &Bytes);

  /// Drains entries queued by publish() in a forked worker, hex-encoded
  /// for the flat JSON payload.
  std::vector<std::string> drainPendingHex();

  /// Worker-side hygiene: seals the shared segment read-only the first
  /// time a non-owner process calls this. Safe to call unconditionally.
  void sealWorkerView();

  ProcPartitionCache *procCache() { return ProcCache.get(); }
  SharedPartitionSegment *segment() { return Seg.get(); }

  /// Tears down to Off (tests).
  void resetForTests() { configure(PartitionCacheMode::Off); }

  static constexpr size_t DefaultCapBytes = 64u << 20;

private:
  PartitionCacheRuntime() = default;

  PartitionCacheMode Mode = PartitionCacheMode::Off;
  size_t Cap = DefaultCapBytes;
  pid_t OwnerPid = 0;
  bool Sealed = false;
  std::unique_ptr<ProcPartitionCache> ProcCache;
  std::unique_ptr<SharedPartitionSegment> Seg;
  std::mutex PendingMu;
  std::vector<std::string> Pending; ///< serialized entries, worker-side
};

} // namespace tbaa

#endif // TBAA_CORE_PARTITIONCACHE_H
