//===- TBAAContext.h - Facts behind type-based alias analysis ---*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program facts all three TBAA variants share (Section 2 of the
/// paper):
///
///  * Subtypes(T) as bitsets -- TypeDecl's compatibility test is
///    Subtypes(Type(p)) ∩ Subtypes(Type(q)) ≠ ∅.
///  * AddressTaken facts -- which fields / array element types ever have
///    their address taken (VAR actuals and aliasing WITH, the only two
///    address-taking constructs of Modula-3/M3L). Section 4 widens this
///    with the pass-by-reference-formal clause for the open world.
///  * The Group partition of pointer types from selective type merging
///    (Figure 2) and the resulting TypeRefsTable. Section 4 widens the
///    merge with every subtype-related pair of types unavailable code can
///    reconstruct (everything not involving BRANDED types).
///
/// Building the context is one linear pass over the program plus a union
/// per pointer assignment -- the paper's O(n) bound (Section 2.5).
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_CORE_TBAACONTEXT_H
#define TBAA_CORE_TBAACONTEXT_H

#include "lang/AST.h"
#include "lang/Types.h"
#include "support/DynBitset.h"
#include "support/UnionFind.h"

#include <memory>
#include <string>
#include <vector>

namespace tbaa {

struct TBAAOptions {
  /// Section 4: assume unavailable code may take addresses via VAR
  /// formals and may merge any subtype-related pair of unbranded types.
  bool OpenWorld = false;
};

/// Canonical, order-independent fingerprint of every fact the alias
/// oracles consult: the type table rendered as sorted structural
/// descriptors (names included, ids excluded, so two tables declaring
/// the same types in any order fingerprint identically), the subtype
/// sets, the selective-merge group partition, the AddressTaken facts
/// and the open-world/degraded switches -- all expressed through dense
/// *ranks* rather than module-local TypeIds/FieldIds. Two contexts with
/// equal keys answer every mayAlias query identically, which is what
/// lets the partition cache rebind one module's alias-class bitmaps
/// onto another module's interning.
struct ContextFingerprint {
  /// False when the table cannot be ranked unambiguously (two distinct
  /// canonical types or field declarations render identically). Cache
  /// clients must then bypass the cache -- a safe precision-free out.
  bool Valid = false;
  /// FNV-1a 64 of Key mixed with its support/CRC32 checksum. Collisions
  /// are resolved by comparing the full Key text, never trusted.
  uint64_t Hash = 0;
  /// The full canonical key text the hash summarizes.
  std::string Key;
  /// TypeId -> structural rank (shared with the type's canonical id).
  std::vector<uint32_t> TypeRank;
  /// FieldId -> rank; ~0u for ids the table never declared.
  std::vector<uint32_t> FieldRank;
};

class TBAAContext {
public:
  TBAAContext(const ModuleAST &M, const TypeTable &Types, TBAAOptions Opts);

  const TypeTable &types() const { return Types; }
  const TBAAOptions &options() const { return Opts; }

  /// TypeDecl compatibility: Subtypes(A) ∩ Subtypes(B) ≠ ∅.
  bool typeDeclCompat(TypeId A, TypeId B) const;

  /// SMTypeRefs compatibility: TypeRefsTable(A) ∩ TypeRefsTable(B) ≠ ∅.
  bool typeRefsCompat(TypeId A, TypeId B) const;

  /// TypeRefsTable(T): the types an AP declared of type T may reference.
  std::vector<TypeId> typeRefs(TypeId T) const;

  /// AddressTaken for a qualified expression p.f: some compatible object's
  /// field f had its address taken. \p UseTypeRefs selects SMTypeRefs
  /// compatibility for the fact-applicability test. \p FieldValueType is
  /// Type(p.f), consulted by the open-world formal-type clause.
  bool addressTakenField(FieldId F, TypeId BaseType, TypeId FieldValueType,
                         bool UseTypeRefs) const;

  /// AddressTaken for a subscripted expression a[i] over array type
  /// \p ArrayType with elements of \p ElemType.
  bool addressTakenElem(TypeId ArrayType, TypeId ElemType,
                        bool UseTypeRefs) const;

  /// Number of pointer-assignment merges performed (tests, reporting).
  unsigned mergeCount() const { return Merges; }

  /// True when the BudgetRegistry TypeRefs budget ran out during
  /// construction. The precise SMTypeRefs tables are then abandoned and
  /// typeRefsCompat()/typeRefs() answer with declared-type (TypeDecl)
  /// compatibility -- a strict superset, so every consumer stays sound
  /// and merely loses precision (see docs/ROBUSTNESS.md).
  bool typeRefsDegraded() const { return Degraded; }

  /// Canonical content fingerprint of this context (computed lazily and
  /// cached; the context is immutable after construction). Not
  /// thread-safe on first call -- compute it before fanning out.
  const ContextFingerprint &fingerprint() const;

private:
  void collectFromStmtList(const StmtList &Stmts);
  void collectFromStmt(const Stmt &S);
  void collectFromExpr(const Expr &E);
  void recordAssignment(TypeId Lhs, TypeId Rhs);
  void recordAddressTaken(const Expr &Designator);
  void uniteGroups(TypeId A, TypeId B);
  const DynBitset &subtypeSet(TypeId T) const;
  const DynBitset &typeRefsSet(TypeId T) const;

  const TypeTable &Types;
  TBAAOptions Opts;
  size_t NumTypes;
  /// Live only during construction (Step 2's merging state).
  UnionFind *UF = nullptr;
  TypeId CurReturnType = InvalidTypeId;

  // Subtypes(T) per canonical id.
  std::vector<DynBitset> SubtypeBits;
  // Group membership after selective merging, then filtered per type into
  // TypeRefsTable (Step 3 of Figure 2).
  std::vector<uint32_t> GroupOf; ///< canonical type -> group root
  std::vector<DynBitset> TypeRefsBits;
  unsigned Merges = 0;
  bool Degraded = false;

  // AddressTaken facts.
  struct FieldFact {
    FieldId Field;
    TypeId BaseType; ///< canonical static type of the prefix
  };
  std::vector<FieldFact> FieldFacts;
  std::vector<TypeId> ElemFacts; ///< canonical array types
  /// Open world: canonical types of every pass-by-reference formal.
  std::vector<TypeId> ByRefFormalTypes;

  /// Lazily computed by fingerprint().
  mutable std::unique_ptr<ContextFingerprint> FP;
};

} // namespace tbaa

#endif // TBAA_CORE_TBAACONTEXT_H
