//===- AliasClasses.h - Module-level alias-class query engine ---*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper sells TBAA on being *cheap* (Section 2.5 / Figure 8), yet the
/// hot clients -- RLE's kill/CSE loop, the mod-ref kill sets, the alias
/// census -- all issue pairwise mayAlias calls, an O(refs^2) pattern. The
/// number of *distinct* abstract locations in a module is far smaller than
/// the number of reference sites, and TBAA verdicts depend only on those
/// abstract locations, so queries should be table lookups, not
/// recomputations.
///
/// AliasClassEngine interns every AbsLoc a module can ever ask about into
/// a dense LocId (one scan: each LoadMem/StoreMem path, plus the
/// Deref-of-variable locations the mod-ref and kill models synthesize for
/// address-taken variables). Interning is level-independent and happens
/// once per module -- the degradation ladder reuses the table across
/// rungs instead of re-interning on every downgrade.
///
/// Per AliasLevel the engine then builds, lazily, a Partition:
///
///  * Rows[a] -- the exact may-alias verdict bitmap of location a, filled
///    by asking the reference oracle once per unordered pair. This is the
///    ground truth; every engine answer is bit-identical to the oracle's.
///  * ClassOf[] -- union-find equivalence classes over the may-alias
///    pairs. Compatibility is transitive for the merged SMTypeRefs /
///    SMFieldTypeRefs relations (Figure 2) but *not* in general (subtype
///    sets intersect non-transitively), so classes are the union-closure:
///    different classes guarantee no-alias (a class-ID compare), same
///    class falls through.
///  * Uniform[] -- classes where every intra-class pair may-aliases; a
///    same-class query in a uniform class is answered "may" without
///    touching the matrix. Non-uniform same-class queries take the
///    counted slow path (a row-bitmap test), still O(1).
///
/// Locations never interned (none in practice -- the constructor covers
/// everything clients synthesize) fall back to the reference oracle and
/// are counted, so stale coverage degrades to the old cost, never to a
/// wrong answer. Verdict rows depend only on the TBAAContext, which the
/// AnalysisManager never invalidates, so a cached engine can only go
/// stale by *missing* locations -- exactly what the fallback absorbs and
/// what --verify-analyses diffs for.
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_CORE_ALIASCLASSES_H
#define TBAA_CORE_ALIASCLASSES_H

#include "core/AliasOracle.h"
#include "core/PartitionCache.h"
#include "ir/IR.h"
#include "support/DynBitset.h"

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace tbaa {

/// Per-engine query tallies (global mirrors live in the StatsRegistry
/// under the "engine" group).
/// Plain-word tallies bumped through std::atomic_ref (relaxed) in the
/// engine's const query paths: parallel pipeline stages issue queries
/// from several workers against one engine, and a relaxed add keeps the
/// totals exact without changing this struct's layout for readers.
struct AliasClassStats {
  uint64_t PartitionsBuilt = 0;
  uint64_t BuildQueries = 0; ///< Reference-oracle calls spent building.
  uint64_t FastAnswers = 0;  ///< Class-ID compare / uniform-class hits.
  uint64_t SlowPath = 0;     ///< Same-class row-bitmap lookups.
  uint64_t Fallbacks = 0;    ///< Un-interned locations -> reference oracle.
  uint64_t BulkOps = 0;      ///< Row / intersection bitmap operations.
  uint64_t CacheHits = 0;    ///< Partitions rebound from the cache.
  uint64_t CacheMisses = 0;  ///< Cache consults that fell back to a build.
};

/// Everything the engine needs to consult and feed the partition cache,
/// prepared by the AnalysisManager once the context fingerprint and the
/// module's canonical locations are known. Only bound when the mapping
/// LocId -> CanonLoc is a *bijection* (ranks canonicalize structurally
/// equal types, so two raw-distinct AbsLocs could collapse onto one
/// CanonLoc; rebinding would then be unsound for the Perfect level, whose
/// verdict is raw identity -- such modules simply bypass the cache).
struct PartitionCacheBinding {
  bool Valid = false;
  uint64_t Hash = 0;
  std::string Key;
  /// LocId -> canonical location (same order as the engine's interning).
  std::vector<CanonLoc> CanonLocs;
  /// CanonLocs sorted ascending: the lookup subset and publish universe.
  std::vector<CanonLoc> SortedLocs;
  /// --verify-analyses: cross-check every hit against a fresh build.
  bool VerifyHits = false;
  /// Receives a diff description when a verified hit mismatches.
  std::function<void(const std::string &)> ReportStale;
};

class AliasClassEngine {
public:
  using LocId = uint32_t;
  static constexpr LocId NoLoc = ~0u;

  /// One alias level's equivalence-class view of the interned locations.
  struct Partition {
    AliasLevel Level;
    /// LocId -> dense class id (union-closure of may-alias pairs).
    std::vector<uint32_t> ClassOf;
    /// Class id -> every intra-class pair may-aliases (incl. diagonal).
    std::vector<uint8_t> Uniform;
    /// LocId -> exact may-alias verdict bitmap over all LocIds.
    std::vector<DynBitset> Rows;
    uint32_t NumClasses = 0;
  };

  /// Interns every abstract location \p M can ask about. Does not retain
  /// a reference to \p M.
  explicit AliasClassEngine(const IRModule &M);

  size_t numLocs() const { return Locs.size(); }
  const AbsLoc &loc(LocId Id) const { return Locs[Id]; }
  LocId lookup(const AbsLoc &L) const;
  LocId lookupPath(const MemPath &P) const {
    return lookup(AbsLoc::fromPath(P));
  }

  /// The partition for \p Ref's level, built on first request by asking
  /// \p Ref once per unordered location pair. Later calls at the same
  /// level reuse the cached partition (whatever oracle built it), so the
  /// degradation ladder never re-interns or re-partitions a rung.
  const Partition &partition(const AliasOracle &Ref) const;
  const Partition *partitionIfBuilt(AliasLevel Level) const;

  //===--------------------------------------------------------------------===//
  // Scalar queries -- bit-identical to the reference oracle
  //===--------------------------------------------------------------------===//

  bool mayAliasAbs(const Partition &P, const AbsLoc &A, const AbsLoc &B,
                   const AliasOracle &Ref) const;
  /// Path queries add the lexical-identity case on top of the abstract
  /// verdict (Case 1 of Table 2); Perfect is pure lexical identity.
  bool mayAlias(const Partition &P, const MemPath &A, const MemPath &B,
                const AliasOracle &Ref) const;

  //===--------------------------------------------------------------------===//
  // Bulk operations
  //===--------------------------------------------------------------------===//

  /// The class set killed by a store to \p L: the bitmap of every
  /// location that may alias it.
  const DynBitset &aliasSet(const Partition &P, LocId L) const;
  /// Does the may-alias set of \p L intersect \p Set (a LocId bitmap)?
  /// One O(words) step -- the mod-ref call-kill test.
  bool intersectsAliasSet(const Partition &P, LocId L,
                          const DynBitset &Set) const;

  const AliasClassStats &stats() const { return Counters; }

  /// Arms the partition cache for this engine's lazy builds. Call before
  /// the first partition() request; a binding with Valid == false is the
  /// same as never calling.
  void bindPartitionCache(PartitionCacheBinding B) {
    CacheBinding = std::move(B);
  }
  const PartitionCacheBinding &partitionCacheBinding() const {
    return CacheBinding;
  }

private:
  using AbsKey = std::array<uint64_t, 2>;
  struct AbsKeyHash {
    size_t operator()(const AbsKey &K) const {
      uint64_t H = 1469598103934665603ull;
      for (uint64_t W : K) {
        H ^= W;
        H *= 1099511628211ull;
      }
      return static_cast<size_t>(H);
    }
  };

  LocId intern(const AbsLoc &L);
  Partition &build(AliasLevel Level, const AliasOracle &Ref) const;

  std::vector<AbsLoc> Locs;
  std::unordered_map<AbsKey, LocId, AbsKeyHash> Index;
  /// Indexed by AliasLevel; lazy.
  mutable std::array<std::unique_ptr<Partition>, 5> Parts;
  mutable AliasClassStats Counters;
  PartitionCacheBinding CacheBinding;
};

} // namespace tbaa

#endif // TBAA_CORE_ALIASCLASSES_H
