//===- InstrumentedOracle.h - Counting/caching oracle decorator -*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A decorator over any AliasOracle that (a) tallies queries and their
/// verdicts -- the paper's own evaluation currency -- and (b) memoizes
/// answers. TBAA verdicts depend only on the lexical content of the two
/// access paths, and RLE's kill checks re-ask the same (store path, load
/// path) pairs across every block of the dataflow iteration, so the
/// cache converts an O(paths^2)-per-iteration query pattern into hash
/// lookups. The decorator is answer-preserving by construction: keys
/// cover every field the wrapped oracles read.
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_CORE_INSTRUMENTEDORACLE_H
#define TBAA_CORE_INSTRUMENTEDORACLE_H

#include "core/AliasOracle.h"

#include <array>
#include <memory>
#include <unordered_map>

namespace tbaa {

/// Counters maintained by InstrumentedOracle.
struct OracleStats {
  uint64_t PathQueries = 0; ///< mayAlias(MemPath, MemPath) calls.
  uint64_t AbsQueries = 0;  ///< mayAliasAbs(AbsLoc, AbsLoc) calls.
  uint64_t MayAlias = 0;    ///< Queries answered "may alias".
  uint64_t NoAlias = 0;     ///< Queries answered "no alias".
  uint64_t CacheHits = 0;   ///< Queries served from the memo table.

  uint64_t totalQueries() const { return PathQueries + AbsQueries; }
  double cacheHitPercent() const {
    return totalQueries()
               ? 100.0 * static_cast<double>(CacheHits) /
                     static_cast<double>(totalQueries())
               : 0.0;
  }
};

/// Owning decorator; see file comment. Query methods are const (the
/// AliasOracle contract), so the counters and memo tables are mutable.
class InstrumentedOracle : public AliasOracle {
public:
  explicit InstrumentedOracle(std::unique_ptr<AliasOracle> Inner);
  ~InstrumentedOracle() override;

  bool mayAlias(const MemPath &A, const MemPath &B) const override;
  bool mayAliasAbs(const AbsLoc &A, const AbsLoc &B) const override;
  AliasLevel level() const override { return Inner->level(); }

  const AliasOracle &inner() const { return *Inner; }
  const OracleStats &stats() const { return Counters; }
  void resetStats();

private:
  // A MemPath packs to 5 words (root, selector+field, index operand in
  // two words, base/value types); an AbsLoc to 2. Pair keys concatenate.
  using PathKey = std::array<uint64_t, 10>;
  using AbsKey = std::array<uint64_t, 4>;

  struct KeyHash {
    template <size_t N> size_t operator()(const std::array<uint64_t, N> &K) const {
      uint64_t H = 1469598103934665603ull; // FNV-1a over the words
      for (uint64_t W : K) {
        H ^= W;
        H *= 1099511628211ull;
      }
      return static_cast<size_t>(H);
    }
  };

  bool recordVerdict(bool May) const;

  std::unique_ptr<AliasOracle> Inner;
  mutable OracleStats Counters;
  mutable std::unordered_map<PathKey, bool, KeyHash> PathCache;
  mutable std::unordered_map<AbsKey, bool, KeyHash> AbsCache;
};

/// Builds an oracle of \p Level over \p Ctx and wraps it.
std::unique_ptr<InstrumentedOracle>
makeInstrumentedOracle(const TBAAContext &Ctx, AliasLevel Level);

} // namespace tbaa

#endif // TBAA_CORE_INSTRUMENTEDORACLE_H
