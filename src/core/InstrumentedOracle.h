//===- InstrumentedOracle.h - Counting/caching oracle decorator -*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A decorator over any AliasOracle that (a) tallies queries and their
/// verdicts -- the paper's own evaluation currency -- and (b) memoizes
/// answers. TBAA verdicts depend only on the lexical content of the two
/// access paths, and RLE's kill checks re-ask the same (store path, load
/// path) pairs across every block of the dataflow iteration, so the
/// cache converts an O(paths^2)-per-iteration query pattern into hash
/// lookups. The decorator is answer-preserving by construction: keys
/// cover every field the wrapped oracles read.
///
/// Paths and abstract locations are interned into dense 32-bit ids first
/// (one hash of the full lexical key per distinct operand, ever), and the
/// memo proper is keyed on the id pair -- one word instead of ten. The
/// memo is bounded: when it reaches capacity it is wiped (the interners
/// survive -- distinct operands are finitely many per module; it is the
/// *pairs* that grow quadratically), so a batch run over many modules
/// cannot grow the table without limit. Wipes are counted as Evictions
/// and reported under oracle.memo-evictions.
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_CORE_INSTRUMENTEDORACLE_H
#define TBAA_CORE_INSTRUMENTEDORACLE_H

#include "core/AliasOracle.h"

#include <array>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace tbaa {

/// Counters maintained by InstrumentedOracle.
struct OracleStats {
  uint64_t PathQueries = 0; ///< mayAlias(MemPath, MemPath) calls.
  uint64_t AbsQueries = 0;  ///< mayAliasAbs(AbsLoc, AbsLoc) calls.
  uint64_t MayAlias = 0;    ///< Queries answered "may alias".
  uint64_t NoAlias = 0;     ///< Queries answered "no alias".
  uint64_t CacheHits = 0;   ///< Queries served from the memo table.
  uint64_t Evictions = 0;   ///< Memo wipes forced by the capacity bound.

  uint64_t totalQueries() const { return PathQueries + AbsQueries; }
  double cacheHitPercent() const {
    return totalQueries()
               ? 100.0 * static_cast<double>(CacheHits) /
                     static_cast<double>(totalQueries())
               : 0.0;
  }
};

/// Owning decorator; see file comment. Query methods are const (the
/// AliasOracle contract), so the counters and memo tables are mutable.
class InstrumentedOracle : public AliasOracle {
public:
  explicit InstrumentedOracle(std::unique_ptr<AliasOracle> Inner);
  ~InstrumentedOracle() override;

  bool mayAlias(const MemPath &A, const MemPath &B) const override;
  bool mayAliasAbs(const AbsLoc &A, const AbsLoc &B) const override;
  AliasLevel level() const override { return Inner->level(); }

  const AliasOracle &inner() const { return *Inner; }
  const OracleStats &stats() const { return Counters; }
  void resetStats();

  /// Bound on the number of memoized verdicts (path + abstract combined).
  /// Reaching it wipes the memo (not the interners) and counts an
  /// eviction. Mainly narrowed by tests; the default absorbs any single
  /// module while bounding batch runs.
  void setMemoCapacity(size_t Cap) { MemoCapacity = Cap ? Cap : 1; }
  size_t memoCapacity() const { return MemoCapacity; }

  /// When on, every query takes a mutex around the interners, the memo,
  /// the counters and the inner oracle, so pool workers can share this
  /// decorator during a parallel pipeline stage. Verdicts are
  /// unaffected (the memo is answer-preserving); only the memo's
  /// hit/miss split can vary with interleaving. Off (the default) the
  /// query path is lock-free as before. Toggle only while no queries
  /// are in flight.
  void setThreadSafe(bool On) { ThreadSafe = On; }
  bool threadSafe() const { return ThreadSafe; }

private:
  // Lexical keys, hashed once per *distinct* operand to assign a dense
  // id: a MemPath packs to 5 words (root, selector+field, index operand
  // in two words, base/value types); an AbsLoc to 2.
  using PathKey = std::array<uint64_t, 5>;
  using AbsKey = std::array<uint64_t, 2>;

  struct KeyHash {
    template <size_t N> size_t operator()(const std::array<uint64_t, N> &K) const {
      uint64_t H = 1469598103934665603ull; // FNV-1a over the words
      for (uint64_t W : K) {
        H ^= W;
        H *= 1099511628211ull;
      }
      return static_cast<size_t>(H);
    }
  };

  bool recordVerdict(bool May) const;
  /// Memo lookup; nullptr means miss (capacity enforced, eviction
  /// counted) and the caller must compute + insert via memoInsert.
  const bool *memoFind(uint64_t Key) const;
  void memoInsert(uint64_t Key, bool Verdict) const;

  std::unique_ptr<AliasOracle> Inner;
  mutable OracleStats Counters;
  // Dense-id interners. Ids are disjoint across the two kinds (paths are
  // even, abstract locations odd), so one memo serves both.
  mutable std::unordered_map<PathKey, uint32_t, KeyHash> PathIds;
  mutable std::unordered_map<AbsKey, uint32_t, KeyHash> AbsIds;
  // (idA << 32 | idB) -> verdict. Asymmetric on purpose: key order
  // mirrors argument order, exactly as the unbounded table did.
  mutable std::unordered_map<uint64_t, bool> Memo;
  size_t MemoCapacity = 1u << 20;
  bool ThreadSafe = false;
  mutable std::mutex QueryMu; ///< Held per query when ThreadSafe.
};

/// Builds an oracle of \p Level over \p Ctx and wraps it.
std::unique_ptr<InstrumentedOracle>
makeInstrumentedOracle(const TBAAContext &Ctx, AliasLevel Level);

} // namespace tbaa

#endif // TBAA_CORE_INSTRUMENTEDORACLE_H
