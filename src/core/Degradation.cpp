//===- Degradation.cpp ----------------------------------------------------===//

#include "core/Degradation.h"

#include "support/Budget.h"
#include "support/Remarks.h"
#include "support/Stats.h"
#include "support/Trace.h"

using namespace tbaa;

TBAA_STATISTIC(NumOracleDowngrades, "degrade", "oracle-downgrades",
               "Alias-oracle rungs dropped under query budget");

namespace {

/// One rung down the precision ladder. Coarser rungs answer may-alias
/// for a superset of pairs, so stepping down is always sound. TypeDecl
/// is the floor (it is the paper's cheapest analysis; there is nothing
/// cheaper to fall to), and Perfect is a measurement tool that never
/// degrades.
AliasLevel coarserLevel(AliasLevel L) {
  switch (L) {
  case AliasLevel::SMFieldTypeRefs:
    return AliasLevel::FieldTypeDecl;
  case AliasLevel::SMTypeRefs:
  case AliasLevel::FieldTypeDecl:
  case AliasLevel::TypeDecl:
    return AliasLevel::TypeDecl;
  case AliasLevel::Perfect:
    return AliasLevel::Perfect;
  }
  return AliasLevel::TypeDecl;
}

} // namespace

DegradingOracle::DegradingOracle(const TBAAContext &Ctx, AliasLevel Level)
    : Ctx(Ctx), Cur(Level), Inner(&rung(Level)) {}

AliasOracle &DegradingOracle::rung(AliasLevel L) const {
  auto &Slot = Rungs[static_cast<size_t>(L)];
  if (!Slot)
    Slot = makeAliasOracle(Ctx, L);
  return *Slot;
}

void DegradingOracle::chargeQuery() const {
  PhaseBudget &Budget = BudgetRegistry::instance().Oracle;
  if (Budget.charge())
    return;
  AliasLevel Next = coarserLevel(Cur);
  // The budget is per rung: each downgrade refills it, so the floor
  // answers indefinitely (its queries are constant-time bitset tests).
  Budget.refill();
  if (Next == Cur)
    return;
  ++NumOracleDowngrades;
  ++Downgrades;
  RemarkEngine::instance().emit(
      Remark(RemarkKind::Analysis, "degrade", "OracleDowngraded", SourceLoc{},
             std::string("alias query budget exhausted; downgrading ") +
                 aliasLevelName(Cur) + " to " + aliasLevelName(Next))
          .arg("from", aliasLevelName(Cur))
          .arg("to", aliasLevelName(Next))
          .arg("budget", std::to_string(Budget.Limit)));
  TraceRecorder &TR = TraceRecorder::instance();
  if (TR.enabled())
    TR.instant("degrade", "oracle-downgrade",
               TraceArgs()
                   .str("from", aliasLevelName(Cur))
                   .str("to", aliasLevelName(Next))
                   .num("budget", static_cast<std::uint64_t>(Budget.Limit))
                   .render());
  Cur = Next;
  Inner = &rung(Next);
}

bool DegradingOracle::mayAlias(const MemPath &A, const MemPath &B) const {
  chargeQuery();
  return Inner->mayAlias(A, B);
}

bool DegradingOracle::mayAliasAbs(const AbsLoc &A, const AbsLoc &B) const {
  chargeQuery();
  return Inner->mayAliasAbs(A, B);
}

std::unique_ptr<InstrumentedOracle>
tbaa::makeDegradingOracle(const TBAAContext &Ctx, AliasLevel Level) {
  return std::make_unique<InstrumentedOracle>(
      std::make_unique<DegradingOracle>(Ctx, Level));
}
