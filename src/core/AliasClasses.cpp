//===- AliasClasses.cpp ---------------------------------------------------===//

#include "core/AliasClasses.h"

#include "support/Metrics.h"
#include "support/Stats.h"
#include "support/Timing.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <atomic>
#include <cassert>

using namespace tbaa;

TBAA_STATISTIC(NumLocsInterned, "engine", "locs-interned",
               "Abstract locations interned into dense ids");
TBAA_STATISTIC(NumPartitionsBuilt, "engine", "partitions-built",
               "Per-level alias-class partitions built");
TBAA_STATISTIC(NumClassesBuilt, "engine", "classes-built",
               "May-alias equivalence classes formed across partitions");
TBAA_STATISTIC(NumBuildQueries, "engine", "build-queries",
               "Reference-oracle queries spent building partitions");
TBAA_STATISTIC(NumFastAnswers, "engine", "fast-answers",
               "Queries answered by class-ID compare or uniform class");
TBAA_STATISTIC(NumSlowPath, "engine", "slow-path",
               "Same-class queries answered from the verdict matrix");
TBAA_STATISTIC(NumFallbacks, "engine", "fallback-queries",
               "Queries on un-interned locations sent to the reference "
               "oracle");
TBAA_STATISTIC(NumBulkOps, "engine", "bulk-ops",
               "Bulk bitmap operations (kill sets, set intersections)");

TBAA_HISTOGRAM(PartitionBuildUs, "engine", "partition-build-us",
               "Wall time to build one per-level alias-class partition",
               "us");

namespace {

std::array<uint64_t, 2> packAbs(const AbsLoc &L) {
  std::array<uint64_t, 2> K;
  K[0] = (static_cast<uint64_t>(L.Sel) << 32) | L.Field;
  K[1] = (static_cast<uint64_t>(L.BaseType) << 32) | L.ValueType;
  return K;
}

/// The abstract location "variable V viewed through an escaped address" --
/// what ModRefAnalysis and RLE's kill model synthesize for address-taken
/// variables (a Deref of the variable's type).
AbsLoc varDerefLoc(TypeId VarType) {
  AbsLoc L;
  L.Sel = SelKind::Deref;
  L.BaseType = VarType;
  L.ValueType = VarType;
  return L;
}

/// Derives ClassOf/Uniform/NumClasses from an already-filled Rows matrix.
/// Shared by the fresh build and the cache-rebind path: the unite and
/// compression order depends only on Rows, so a rebound partition is
/// bit-identical to the one a fresh build would produce.
void finishPartition(AliasClassEngine::Partition &P) {
  size_t L = P.Rows.size();
  UnionFind UF(L);
  for (size_t I = 0; I != L; ++I)
    for (size_t J = I + 1; J != L; ++J)
      if (P.Rows[I].test(J))
        UF.unite(static_cast<uint32_t>(I), static_cast<uint32_t>(J));
  // Compress union-find roots into dense class ids.
  P.ClassOf.assign(L, 0);
  std::vector<uint32_t> RootToClass(L, ~0u);
  for (size_t I = 0; I != L; ++I) {
    uint32_t Root = UF.find(static_cast<uint32_t>(I));
    if (RootToClass[Root] == ~0u)
      RootToClass[Root] = P.NumClasses++;
    P.ClassOf[I] = RootToClass[Root];
  }
  // A class is uniform when every member's row covers the whole class
  // (including the diagonal); such classes answer "may" on a class-ID
  // compare alone. Non-transitive levels leave some classes non-uniform.
  std::vector<DynBitset> ClassMask(P.NumClasses, DynBitset(L));
  std::vector<uint32_t> ClassSize(P.NumClasses, 0);
  for (size_t I = 0; I != L; ++I) {
    ClassMask[P.ClassOf[I]].set(I);
    ++ClassSize[P.ClassOf[I]];
  }
  P.Uniform.assign(P.NumClasses, 1);
  for (size_t I = 0; I != L; ++I) {
    DynBitset Covered = P.Rows[I];
    Covered &= ClassMask[P.ClassOf[I]];
    if (Covered.count() != ClassSize[P.ClassOf[I]])
      P.Uniform[P.ClassOf[I]] = 0;
  }
}

} // namespace

AliasClassEngine::AliasClassEngine(const IRModule &M) {
  TBAA_TIME_SCOPE("alias-classes");
  // Every lexical memory reference, root-abstracted.
  for (const IRFunction &F : M.Functions)
    for (const BasicBlock &B : F.Blocks)
      for (const Instr &I : B.Instrs)
        if (I.isMemAccess())
          intern(AbsLoc::fromPath(I.Path));
  // Every Deref-of-variable location a kill query can synthesize: only
  // address-taken variables are ever asked about.
  for (const IRVar &G : M.Globals)
    if (G.AddressTaken)
      intern(varDerefLoc(G.Type));
  for (const IRFunction &F : M.Functions)
    for (const IRVar &V : F.Frame)
      if (V.AddressTaken)
        intern(varDerefLoc(V.Type));
}

AliasClassEngine::LocId AliasClassEngine::intern(const AbsLoc &L) {
  auto [It, Inserted] =
      Index.try_emplace(packAbs(L), static_cast<LocId>(Locs.size()));
  if (Inserted) {
    Locs.push_back(L);
    ++NumLocsInterned;
  }
  return It->second;
}

AliasClassEngine::LocId AliasClassEngine::lookup(const AbsLoc &L) const {
  auto It = Index.find(packAbs(L));
  return It == Index.end() ? NoLoc : It->second;
}

const AliasClassEngine::Partition *
AliasClassEngine::partitionIfBuilt(AliasLevel Level) const {
  return Parts[static_cast<size_t>(Level)].get();
}

const AliasClassEngine::Partition &
AliasClassEngine::partition(const AliasOracle &Ref) const {
  AliasLevel Level = Ref.level();
  if (const Partition *P = partitionIfBuilt(Level))
    return *P;
  return build(Level, Ref);
}

AliasClassEngine::Partition &
AliasClassEngine::build(AliasLevel Level, const AliasOracle &Ref) const {
  TBAA_TIME_SCOPE("alias-classes");
  const bool Timed = MetricsRegistry::instance().enabled();
  const uint64_t T0 = Timed ? trace::nowUs() : 0;
  auto P = std::make_unique<Partition>();
  P->Level = Level;
  size_t L = Locs.size();
  P->Rows.assign(L, DynBitset(L));

  // One reference query per unordered pair fills the exact verdict
  // matrix; the union-closure over may-pairs yields the classes.
  auto fillFresh = [&](std::vector<DynBitset> &Rows) {
    for (size_t I = 0; I != L; ++I)
      for (size_t J = I; J != L; ++J) {
        bool May = Ref.mayAliasAbs(Locs[I], Locs[J]);
        std::atomic_ref<uint64_t>(Counters.BuildQueries)
        .fetch_add(1, std::memory_order_relaxed);
        ++NumBuildQueries;
        if (!May)
          continue;
        Rows[I].set(J);
        Rows[J].set(I);
      }
  };

  bool FromCache = false;
  if (CacheBinding.Valid) {
    PartitionCacheEntry E;
    if (PartitionCacheRuntime::instance().lookup(
            CacheBinding.Hash, CacheBinding.Key, static_cast<uint8_t>(Level),
            CacheBinding.SortedLocs, E)) {
      // Rebind: the entry's universe covers this module's canonical locs,
      // so each LocId maps into it by binary search; copying the covered
      // sub-matrix reproduces exactly what fillFresh would compute.
      std::vector<size_t> EIdx(L);
      for (size_t I = 0; I != L; ++I)
        EIdx[I] = static_cast<size_t>(
            std::lower_bound(E.Universe.begin(), E.Universe.end(),
                             CacheBinding.CanonLocs[I]) -
            E.Universe.begin());
      for (size_t I = 0; I != L; ++I)
        for (size_t J = I; J != L; ++J)
          if (E.rowBit(EIdx[I], EIdx[J])) {
            P->Rows[I].set(J);
            P->Rows[J].set(I);
          }
      FromCache = true;
      std::atomic_ref<uint64_t>(Counters.CacheHits)
          .fetch_add(1, std::memory_order_relaxed);
      if (CacheBinding.VerifyHits) {
        std::vector<DynBitset> Fresh(L, DynBitset(L));
        fillFresh(Fresh);
        if (Fresh != P->Rows) {
          if (CacheBinding.ReportStale)
            CacheBinding.ReportStale(
                std::string("partition rows for level ") +
                aliasLevelName(Level) +
                " differ between the cache hit and a fresh build");
          P->Rows = std::move(Fresh); // trust the fresh build
        }
      }
    } else {
      std::atomic_ref<uint64_t>(Counters.CacheMisses)
          .fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!FromCache)
    fillFresh(P->Rows);

  finishPartition(*P);

  if (FromCache) {
    NumClassesBuilt += P->NumClasses;
  } else {
    std::atomic_ref<uint64_t>(Counters.PartitionsBuilt)
        .fetch_add(1, std::memory_order_relaxed);
    ++NumPartitionsBuilt;
    NumClassesBuilt += P->NumClasses;
    if (Timed)
      PartitionBuildUs.record(trace::nowUs() - T0);
    if (CacheBinding.Valid) {
      // Publish the fresh partition over the sorted canonical universe.
      PartitionCacheEntry E;
      E.Hash = CacheBinding.Hash;
      E.Key = CacheBinding.Key;
      E.Level = static_cast<uint8_t>(Level);
      E.Universe = CacheBinding.SortedLocs;
      E.RowWords.assign(L * E.wordsPerRow(), 0);
      std::vector<size_t> EIdx(L);
      for (size_t I = 0; I != L; ++I)
        EIdx[I] = static_cast<size_t>(
            std::lower_bound(E.Universe.begin(), E.Universe.end(),
                             CacheBinding.CanonLocs[I]) -
            E.Universe.begin());
      for (size_t I = 0; I != L; ++I)
        for (uint32_t J : P->Rows[I].elements())
          E.setRowBit(EIdx[I], EIdx[J]);
      PartitionCacheRuntime::instance().publish(E);
    }
  }
  Parts[static_cast<size_t>(Level)] = std::move(P);
  return *Parts[static_cast<size_t>(Level)];
}

bool AliasClassEngine::mayAliasAbs(const Partition &P, const AbsLoc &A,
                                   const AbsLoc &B,
                                   const AliasOracle &Ref) const {
  LocId IA = lookup(A), IB = lookup(B);
  if (IA == NoLoc || IB == NoLoc) {
    std::atomic_ref<uint64_t>(Counters.Fallbacks)
      .fetch_add(1, std::memory_order_relaxed);
    ++NumFallbacks;
    return Ref.mayAliasAbs(A, B);
  }
  if (P.ClassOf[IA] != P.ClassOf[IB]) {
    std::atomic_ref<uint64_t>(Counters.FastAnswers)
      .fetch_add(1, std::memory_order_relaxed);
    ++NumFastAnswers;
    return false; // Cross-class: guaranteed no-alias.
  }
  if (P.Uniform[P.ClassOf[IA]]) {
    std::atomic_ref<uint64_t>(Counters.FastAnswers)
      .fetch_add(1, std::memory_order_relaxed);
    ++NumFastAnswers;
    return true;
  }
  std::atomic_ref<uint64_t>(Counters.SlowPath)
      .fetch_add(1, std::memory_order_relaxed);
  ++NumSlowPath;
  return P.Rows[IA].test(IB);
}

bool AliasClassEngine::mayAlias(const Partition &P, const MemPath &A,
                                const MemPath &B,
                                const AliasOracle &Ref) const {
  if (P.Level == AliasLevel::Perfect) {
    // Lexical identity only -- two distinct paths over the same abstract
    // location do NOT alias under Perfect, so never consult the rows.
    std::atomic_ref<uint64_t>(Counters.FastAnswers)
      .fetch_add(1, std::memory_order_relaxed);
    ++NumFastAnswers;
    return A == B;
  }
  if (A == B) {
    std::atomic_ref<uint64_t>(Counters.FastAnswers)
      .fetch_add(1, std::memory_order_relaxed);
    ++NumFastAnswers;
    return true; // Case 1 of Table 2: identical APs always alias.
  }
  return mayAliasAbs(P, AbsLoc::fromPath(A), AbsLoc::fromPath(B), Ref);
}

const DynBitset &AliasClassEngine::aliasSet(const Partition &P,
                                            LocId L) const {
  assert(L < P.Rows.size());
  std::atomic_ref<uint64_t>(Counters.BulkOps)
      .fetch_add(1, std::memory_order_relaxed);
  ++NumBulkOps;
  return P.Rows[L];
}

bool AliasClassEngine::intersectsAliasSet(const Partition &P, LocId L,
                                          const DynBitset &Set) const {
  assert(L < P.Rows.size());
  std::atomic_ref<uint64_t>(Counters.BulkOps)
      .fetch_add(1, std::memory_order_relaxed);
  ++NumBulkOps;
  return P.Rows[L].intersects(Set);
}
