//===- AliasCensus.cpp ----------------------------------------------------===//

#include "core/AliasCensus.h"

using namespace tbaa;

CensusResult tbaa::countAliasPairs(const IRModule &M,
                                   const AliasOracle &Oracle) {
  struct Ref {
    FuncId Func;
    MemPath Path;
    AbsLoc Abs;
  };
  std::vector<Ref> Refs;
  for (const IRFunction &F : M.Functions)
    for (const BasicBlock &B : F.Blocks)
      for (const Instr &I : B.Instrs) {
        if (!I.isMemAccess())
          continue;
        Refs.push_back({F.Id, I.Path, AbsLoc::fromPath(I.Path)});
      }

  CensusResult R;
  R.References = Refs.size();
  for (size_t I = 0; I != Refs.size(); ++I) {
    for (size_t J = I + 1; J != Refs.size(); ++J) {
      if (Refs[I].Func == Refs[J].Func) {
        if (Oracle.mayAlias(Refs[I].Path, Refs[J].Path)) {
          ++R.LocalPairs;
          ++R.GlobalPairs;
        }
      } else if (Oracle.mayAliasAbs(Refs[I].Abs, Refs[J].Abs)) {
        ++R.GlobalPairs;
      }
    }
  }
  return R;
}
