//===- AliasCensus.cpp ----------------------------------------------------===//

#include "core/AliasCensus.h"

#include "core/AliasClasses.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace tbaa;

CensusResult tbaa::countAliasPairs(const IRModule &M,
                                   const AliasOracle &Oracle) {
  struct Ref {
    FuncId Func;
    MemPath Path;
    AbsLoc Abs;
  };
  std::vector<Ref> Refs;
  for (const IRFunction &F : M.Functions)
    for (const BasicBlock &B : F.Blocks)
      for (const Instr &I : B.Instrs) {
        if (!I.isMemAccess())
          continue;
        Refs.push_back({F.Id, I.Path, AbsLoc::fromPath(I.Path)});
      }

  CensusResult R;
  R.References = Refs.size();
  for (size_t I = 0; I != Refs.size(); ++I) {
    for (size_t J = I + 1; J != Refs.size(); ++J) {
      if (Refs[I].Func == Refs[J].Func) {
        if (Oracle.mayAlias(Refs[I].Path, Refs[J].Path)) {
          ++R.LocalPairs;
          ++R.GlobalPairs;
        }
      } else if (Oracle.mayAliasAbs(Refs[I].Abs, Refs[J].Abs)) {
        ++R.GlobalPairs;
      }
    }
  }
  return R;
}

CensusResult tbaa::countAliasPairs(const IRModule &M,
                                   const AliasClassEngine &Engine,
                                   const AliasOracle &Oracle) {
  using LocId = AliasClassEngine::LocId;
  const AliasClassEngine::Partition &P = Engine.partition(Oracle);
  // Perfect is lexical identity for path pairs and AbsLoc identity for
  // cross-procedure pairs; the partition rows already encode the latter
  // (the diagonal), but same-procedure distinct-path pairs must not
  // consult them.
  bool PerfectLevel = Oracle.level() == AliasLevel::Perfect;

  // Within one procedure, references with equal lexical paths always
  // alias (Case 1 of Table 2, at every level), so group them.
  struct PathGroup {
    MemPath Path;
    LocId Loc;
    uint64_t Count = 0;
  };

  auto choose2 = [](uint64_t N) { return N * (N - 1) / 2; };

  CensusResult R;
  std::vector<uint64_t> GlobalCount(Engine.numLocs(), 0);
  // Cross-procedure pairs are "all pairs minus same-procedure pairs";
  // the per-procedure half of that subtraction accumulates here, each
  // term already weighted by the abstract verdict.
  uint64_t SameFuncAbsPairs = 0;

  for (const IRFunction &F : M.Functions) {
    std::vector<PathGroup> Groups;
    std::unordered_map<LocId, uint64_t> FuncCount;
    for (const BasicBlock &B : F.Blocks)
      for (const Instr &I : B.Instrs) {
        if (!I.isMemAccess())
          continue;
        ++R.References;
        LocId Loc = Engine.lookupPath(I.Path);
        assert(Loc != AliasClassEngine::NoLoc &&
               "engine was built over a different module");
        ++GlobalCount[Loc];
        ++FuncCount[Loc];
        auto It = std::find_if(Groups.begin(), Groups.end(),
                               [&](const PathGroup &G) {
                                 return G.Path == I.Path;
                               });
        if (It == Groups.end())
          Groups.push_back({I.Path, Loc, 1});
        else
          ++It->Count;
      }

    for (size_t GI = 0; GI != Groups.size(); ++GI) {
      R.LocalPairs += choose2(Groups[GI].Count); // identical paths
      if (PerfectLevel)
        continue;
      for (size_t GJ = GI + 1; GJ != Groups.size(); ++GJ)
        if (P.Rows[Groups[GI].Loc].test(Groups[GJ].Loc))
          R.LocalPairs += Groups[GI].Count * Groups[GJ].Count;
    }

    for (auto &[LA, NA] : FuncCount) {
      if (P.Rows[LA].test(LA))
        SameFuncAbsPairs += choose2(NA);
      for (auto &[LB, NB] : FuncCount)
        if (LA < LB && P.Rows[LA].test(LB))
          SameFuncAbsPairs += NA * NB;
    }
  }

  // All abstract-verdict pairs over the whole program, by multiplicity;
  // subtracting the same-procedure share leaves exactly the pairs the
  // pairwise walk sends to mayAliasAbs.
  uint64_t AllAbsPairs = 0;
  for (LocId LA = 0; LA != GlobalCount.size(); ++LA) {
    if (!GlobalCount[LA])
      continue;
    if (P.Rows[LA].test(LA))
      AllAbsPairs += choose2(GlobalCount[LA]);
    for (LocId LB = LA + 1; LB != GlobalCount.size(); ++LB)
      if (GlobalCount[LB] && P.Rows[LA].test(LB))
        AllAbsPairs += GlobalCount[LA] * GlobalCount[LB];
  }
  R.GlobalPairs = R.LocalPairs + (AllAbsPairs - SameFuncAbsPairs);
  return R;
}
