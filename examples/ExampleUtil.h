//===- ExampleUtil.h - Shared helpers for the example programs --*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//

#ifndef TBAA_EXAMPLES_EXAMPLEUTIL_H
#define TBAA_EXAMPLES_EXAMPLEUTIL_H

#include "ir/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace tbaa::examples {

/// Loads M3L source from a benchmark name ("slisp") or a file path.
inline std::string loadSource(const std::string &NameOrPath) {
  if (const WorkloadInfo *W = findWorkload(NameOrPath))
    return W->Source;
  std::ifstream In(NameOrPath);
  if (In) {
    std::ostringstream SS;
    SS << In.rdbuf();
    return SS.str();
  }
  std::fprintf(stderr,
               "unknown workload or unreadable file '%s'; known workloads:",
               NameOrPath.c_str());
  for (const WorkloadInfo &W : allWorkloads())
    std::fprintf(stderr, " %s", W.Name);
  std::fprintf(stderr, "\n");
  return {};
}

inline Compilation compileOrExit(const std::string &Source) {
  DiagnosticEngine Diags;
  Compilation C = compileSource(Source, Diags);
  if (!C.ok()) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    std::exit(1);
  }
  return C;
}

} // namespace tbaa::examples

#endif // TBAA_EXAMPLES_EXAMPLEUTIL_H
