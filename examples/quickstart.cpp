//===- quickstart.cpp - The paper's worked example, end to end ------------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Walks the Section 2 examples with the public API: compile an M3L
// program, build the TBAA facts, print the TypeRefsTable of Figure 3 /
// Table 3, and answer may-alias queries under all three analyses.
//
// Build and run:   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/AliasOracle.h"
#include "core/TBAAContext.h"
#include "ir/Pipeline.h"

#include <cstdio>

using namespace tbaa;

int main() {
  // The paper's Figure 1 type hierarchy and Figure 3 assignments.
  const char *Source = R"(
MODULE Example;
TYPE
  T  = OBJECT f, g: T; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
  S3 = T OBJECT c: INTEGER; END;
VAR
  s1: S1 := NEW(S1);
  s2: S2 := NEW(S2);
  s3: S3 := NEW(S3);
  t: T;
BEGIN
  t := s1; (* Statement 1 *)
  t := s2; (* Statement 2 *)
END Example.
)";

  DiagnosticEngine Diags;
  Compilation C = compileSource(Source, Diags);
  if (!C.ok()) {
    std::fprintf(stderr, "compile error:\n%s", Diags.str().c_str());
    return 1;
  }
  const TypeTable &Types = C.types();

  // Build the shared TBAA facts (closed world).
  TBAAContext Ctx(C.ast(), Types, {});

  std::printf("== Subtypes (Section 2.2) ==\n");
  for (const char *Name : {"T", "S1", "S2", "S3"}) {
    TypeId Id = Types.lookupNamed(Name);
    std::printf("  Subtypes(%s) = {", Name);
    bool First = true;
    for (TypeId S : Types.subtypes(Id)) {
      std::printf("%s%s", First ? "" : ", ", Types.typeName(S).c_str());
      First = false;
    }
    std::printf("}\n");
  }

  std::printf("\n== TypeDecl compatibility (Figure 1) ==\n");
  auto Compat = [&](const char *A, const char *B) {
    bool R = Ctx.typeDeclCompat(Types.lookupNamed(A), Types.lookupNamed(B));
    std::printf("  TypeDecl: %s ~ %s ? %s\n", A, B, R ? "may-alias"
                                                      : "no-alias");
  };
  Compat("T", "S1");
  Compat("T", "S2");
  Compat("S1", "S2"); // incompatible siblings

  std::printf("\n== TypeRefsTable after selective merging (Table 3) ==\n");
  for (const char *Name : {"T", "S1", "S2", "S3"}) {
    TypeId Id = Types.lookupNamed(Name);
    std::printf("  TypeRefsTable(%s) = {", Name);
    bool First = true;
    for (TypeId S : Ctx.typeRefs(Id)) {
      std::printf("%s%s", First ? "" : ", ", Types.typeName(S).c_str());
      First = false;
    }
    std::printf("}\n");
  }

  std::printf("\n== SMTypeRefs queries ==\n");
  auto SMCompat = [&](const char *A, const char *B) {
    bool R = Ctx.typeRefsCompat(Types.lookupNamed(A), Types.lookupNamed(B));
    std::printf("  SMTypeRefs: %s ~ %s ? %s\n", A, B,
                R ? "may-alias" : "no-alias");
  };
  SMCompat("T", "S1"); // merged by statement 1
  SMCompat("T", "S2"); // merged by statement 2
  SMCompat("T", "S3"); // never assigned: TypeDecl says yes, SMTypeRefs no
  SMCompat("S1", "S2");

  std::printf("\nNote how an AP of type T may reference S1 and S2 but not "
              "S3,\nwhile TypeDecl had to assume all three -- the paper's "
              "asymmetry\nfrom Step 3 of Figure 2.\n");
  return 0;
}
