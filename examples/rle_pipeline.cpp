//===- rle_pipeline.cpp - Optimize a program and measure the effect -------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// The full optimization pipeline on one program: compile, pick an alias
// analysis, optionally resolve methods/inline/copy-propagate, run RLE,
// then execute both versions and report loads, micro-ops and simulated
// cycles side by side.
//
// Usage:  rle_pipeline [workload-or-file] [typedecl|fieldtypedecl|
//                       smfieldtyperefs] [--open] [--pipeline]
//
//===----------------------------------------------------------------------===//

#include "ExampleUtil.h"
#include "core/AliasOracle.h"
#include "core/TBAAContext.h"
#include "exec/VM.h"
#include "opt/CopyProp.h"
#include "opt/Devirt.h"
#include "opt/Inline.h"
#include "opt/RLE.h"
#include "sim/CacheSim.h"

#include <cstdio>
#include <cstring>

using namespace tbaa;
using namespace tbaa::examples;

namespace {

struct Measured {
  int64_t Checksum;
  ExecStats Stats;
  uint64_t Cycles;
};

Measured execute(Compilation &C) {
  TimingSimulator Timing;
  VM Machine(C.IR);
  Machine.setOpLimit(2'000'000'000);
  Machine.addMonitor(&Timing);
  if (!Machine.runInit()) {
    std::fprintf(stderr, "init trapped: %s\n",
                 Machine.trapMessage().c_str());
    std::exit(1);
  }
  auto R = Machine.callFunction("Main");
  if (!R) {
    std::fprintf(stderr, "run trapped: %s\n",
                 Machine.trapMessage().c_str());
    std::exit(1);
  }
  return {*R, Machine.stats(), Timing.cycles(Machine.stats())};
}

} // namespace

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "k-tree";
  AliasLevel Level = AliasLevel::SMFieldTypeRefs;
  bool OpenWorld = false, Pipeline = false;
  for (int I = 2; I < argc; ++I) {
    if (!std::strcmp(argv[I], "typedecl"))
      Level = AliasLevel::TypeDecl;
    else if (!std::strcmp(argv[I], "fieldtypedecl"))
      Level = AliasLevel::FieldTypeDecl;
    else if (!std::strcmp(argv[I], "smfieldtyperefs"))
      Level = AliasLevel::SMFieldTypeRefs;
    else if (!std::strcmp(argv[I], "--open"))
      OpenWorld = true;
    else if (!std::strcmp(argv[I], "--pipeline"))
      Pipeline = true;
  }

  std::string Source = loadSource(Name);
  if (Source.empty())
    return 1;

  Compilation Base = compileOrExit(Source);
  Measured B = execute(Base);

  Compilation Opt = compileOrExit(Source);
  TBAAContext Ctx(Opt.ast(), Opt.types(), {.OpenWorld = OpenWorld});
  auto Oracle = makeAliasOracle(Ctx, Level);
  unsigned Resolved = 0, Inlined = 0, Copies = 0;
  if (Pipeline) {
    Resolved = resolveMethodCalls(Opt.IR, Ctx);
    Inlined = inlineCalls(Opt.IR);
    Copies = propagateCopies(Opt.IR);
  }
  RLEStats RS = runRLE(Opt.IR, *Oracle);
  Measured O = execute(Opt);

  if (O.Checksum != B.Checksum) {
    std::fprintf(stderr, "BUG: optimization changed the checksum!\n");
    return 1;
  }

  std::printf("program:   %s\n", Name.c_str());
  std::printf("analysis:  %s (%s world)%s\n", Oracle->name(),
              OpenWorld ? "open" : "closed",
              Pipeline ? " + devirt + inline + copyprop" : "");
  std::printf("checksum:  %lld (preserved)\n\n",
              static_cast<long long>(B.Checksum));
  if (Pipeline)
    std::printf("resolved %u method call(s), inlined %u call site(s), "
                "rewrote %u copy operand(s)\n",
                Resolved, Inlined, Copies);
  std::printf("RLE: hoisted %u load(s) to preheaders, replaced %u with "
              "register references\n\n",
              RS.Hoisted, RS.Replaced);
  std::printf("%-22s %16s %16s %9s\n", "", "base", "optimized", "delta");
  auto Row = [&](const char *Label, uint64_t A, uint64_t BV) {
    double Delta = A ? 100.0 * (static_cast<double>(BV) -
                                static_cast<double>(A)) /
                           static_cast<double>(A)
                     : 0.0;
    std::printf("%-22s %16llu %16llu %8.1f%%\n", Label,
                static_cast<unsigned long long>(A),
                static_cast<unsigned long long>(BV), Delta);
  };
  Row("micro-ops", B.Stats.Ops, O.Stats.Ops);
  Row("heap loads", B.Stats.HeapLoads, O.Stats.HeapLoads);
  Row("other loads", B.Stats.OtherLoads, O.Stats.OtherLoads);
  Row("simulated cycles", B.Cycles, O.Cycles);
  return 0;
}
