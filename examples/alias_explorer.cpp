//===- alias_explorer.cpp - Inspect a program's alias structure -----------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Compiles an M3L program (a bundled benchmark by name, or a .m3l file)
// and reports its static alias structure under the three analyses: the
// Table 5 census, the per-procedure breakdown, and sample may-alias pairs
// that FieldTypeDecl admits but SMFieldTypeRefs refutes.
//
// Usage:   alias_explorer [workload-or-file]     (default: slisp)
//
//===----------------------------------------------------------------------===//

#include "ExampleUtil.h"
#include "core/AliasCensus.h"
#include "core/AliasOracle.h"
#include "core/TBAAContext.h"

#include <cstdio>
#include <vector>

using namespace tbaa;
using namespace tbaa::examples;

int main(int argc, char **argv) {
  std::string Source = loadSource(argc > 1 ? argv[1] : "slisp");
  if (Source.empty())
    return 1;
  Compilation C = compileOrExit(Source);

  TBAAContext Ctx(C.ast(), C.types(), {});
  auto TD = makeAliasOracle(Ctx, AliasLevel::TypeDecl);
  auto FTD = makeAliasOracle(Ctx, AliasLevel::FieldTypeDecl);
  auto SMF = makeAliasOracle(Ctx, AliasLevel::SMFieldTypeRefs);

  std::printf("Alias census (Table 5 metric)\n");
  std::printf("%-18s %10s %10s\n", "analysis", "local", "global");
  for (const auto *Oracle : {TD.get(), FTD.get(), SMF.get()}) {
    CensusResult R = countAliasPairs(C.IR, *Oracle);
    std::printf("%-18s %10llu %10llu   (%llu references)\n", Oracle->name(),
                static_cast<unsigned long long>(R.LocalPairs),
                static_cast<unsigned long long>(R.GlobalPairs),
                static_cast<unsigned long long>(R.References));
  }

  // Show a few pairs the merge step disambiguates.
  std::printf("\nPairs admitted by FieldTypeDecl but refuted by "
              "SMFieldTypeRefs:\n");
  struct Ref {
    const IRFunction *F;
    MemPath Path;
  };
  std::vector<Ref> Refs;
  for (const IRFunction &F : C.IR.Functions)
    for (const BasicBlock &B : F.Blocks)
      for (const Instr &I : B.Instrs)
        if (I.isMemAccess())
          Refs.push_back({&F, I.Path});
  unsigned Shown = 0;
  for (size_t I = 0; I != Refs.size() && Shown < 8; ++I) {
    for (size_t J = I + 1; J != Refs.size() && Shown < 8; ++J) {
      AbsLoc A = AbsLoc::fromPath(Refs[I].Path);
      AbsLoc B = AbsLoc::fromPath(Refs[J].Path);
      if (FTD->mayAliasAbs(A, B) && !SMF->mayAliasAbs(A, B)) {
        std::printf("  %s:%s  ~/~  %s:%s\n", Refs[I].F->Name.c_str(),
                    pathToString(*Refs[I].F, C.IR, Refs[I].Path).c_str(),
                    Refs[J].F->Name.c_str(),
                    pathToString(*Refs[J].F, C.IR, Refs[J].Path).c_str());
        ++Shown;
      }
    }
  }
  if (Shown == 0)
    std::printf("  (none: every subtype of this program is assigned into "
                "its supertype,\n   so selective merging coincides with "
                "FieldTypeDecl -- the paper's usual case)\n");

  std::printf("\nType merge count (Step 2 of Figure 2): %u\n",
              Ctx.mergeCount());
  return 0;
}
