//===- limit_study.cpp - The Section 3.5 methodology on one program -------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Runs the ATOM-style limit analysis on a program before and after
// TBAA+RLE: every executed heap load is recorded with its address and
// value; a load is redundant when the previous load of that address
// produced the same value in the same activation. Remaining redundancy is
// classified into the paper's Figure 10 categories.
//
// Usage:   limit_study [workload-or-file]        (default: k-tree)
//
//===----------------------------------------------------------------------===//

#include "ExampleUtil.h"
#include "core/AliasOracle.h"
#include "core/TBAAContext.h"
#include "exec/VM.h"
#include "limit/LimitAnalysis.h"
#include "opt/RLE.h"

#include <cstdio>

using namespace tbaa;
using namespace tbaa::examples;

namespace {

void runWith(Compilation &C, RedundantLoadMonitor &Monitor) {
  VM Machine(C.IR);
  Machine.setOpLimit(2'000'000'000);
  Machine.addMonitor(&Monitor);
  if (!Machine.runInit() || !Machine.callFunction("Main")) {
    std::fprintf(stderr, "run trapped: %s\n",
                 Machine.trapMessage().c_str());
    std::exit(1);
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "k-tree";
  std::string Source = loadSource(Name);
  if (Source.empty())
    return 1;

  // Original program.
  Compilation Base = compileOrExit(Source);
  RedundantLoadMonitor Before;
  runWith(Base, Before);

  // TBAA + RLE, with the classifier configured from static analyses of
  // the optimized IR (partial redundancy under TBAA; residue a perfect
  // oracle could still remove).
  Compilation Opt = compileOrExit(Source);
  TBAAContext Ctx(Opt.ast(), Opt.types(), {});
  auto Oracle = makeAliasOracle(Ctx, AliasLevel::SMFieldTypeRefs);
  RLEStats RS = runRLE(Opt.IR, *Oracle);
  auto Perfect = makeAliasOracle(Ctx, AliasLevel::Perfect);
  RedundantLoadMonitor After;
  After.configureClassifier(findPartiallyRedundantLoads(Opt.IR, *Oracle),
                            findRemovableLoads(Opt.IR, *Perfect));
  runWith(Opt, After);

  std::printf("program: %s\n", Name.c_str());
  std::printf("RLE removed %u loads statically (%u hoisted, %u "
              "replaced)\n\n",
              RS.total(), RS.Hoisted, RS.Replaced);
  std::printf("dynamic heap loads:      %12llu -> %llu\n",
              static_cast<unsigned long long>(Before.heapLoads()),
              static_cast<unsigned long long>(After.heapLoads()));
  std::printf("dynamic redundant loads: %12llu -> %llu  (%.1f%% "
              "eliminated)\n\n",
              static_cast<unsigned long long>(Before.redundantLoads()),
              static_cast<unsigned long long>(After.redundantLoads()),
              Before.redundantLoads()
                  ? 100.0 * (1.0 - static_cast<double>(
                                       After.redundantLoads()) /
                                       static_cast<double>(
                                           Before.redundantLoads()))
                  : 0.0);
  const RedundancyBreakdown &B = After.breakdown();
  std::printf("classification of what remains (Figure 10):\n");
  auto Row = [&](const char *Label, uint64_t N) {
    std::printf("  %-14s %12llu  (%.2f%% of remaining)\n", Label,
                static_cast<unsigned long long>(N),
                B.total() ? 100.0 * static_cast<double>(N) /
                                static_cast<double>(B.total())
                          : 0.0);
  };
  Row("Encapsulated", B.Encapsulated);
  Row("AliasFailure", B.AliasFailure);
  Row("Conditional", B.Conditional);
  Row("Breakup", B.Breakup);
  Row("Rest", B.Rest);
  std::printf("\nThe paper's reading: Encapsulated loads are dope-vector "
              "accesses implicit\nin the representation; AliasFailure is "
              "what a better alias analysis could\nrecover -- they found "
              "none, and very few appear here.\n");
  return 0;
}
