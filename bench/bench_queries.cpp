//===- bench_queries.cpp - Alias-class engine query reduction -------------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Measures what the alias-class query engine buys: every golden workload
// runs the full RLE + PRE + census arrangement at SMFieldTypeRefs twice,
// once with the pairwise instrumented oracle answering every client
// query directly (baseline), once with the engine's dense interning +
// equivalence-class bitmaps in front of it. The two arrangements must
// produce bit-identical optimization decisions, census numbers and VM
// execution checksums, and the engine arm must issue at most half the
// oracle queries overall -- both enforced here, so the ctest smoke is
// deterministic (counters, not wall clock). Wall-clock preparation time
// (best of 3) is reported for information and in --json.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <chrono>

using namespace tbaa;
using namespace tbaa::bench;

namespace {

struct ArmResult {
  uint64_t Queries = 0;   ///< Instrumented-oracle queries during prep.
  int64_t Checksum = 0;   ///< VM result of the optimized program.
  unsigned Hoisted = 0;
  unsigned Replaced = 0;
  unsigned PREInserted = 0;
  unsigned PREReplaced = 0;
  uint64_t LocalPairs = 0;
  uint64_t GlobalPairs = 0;
  double BestMs = 0; ///< Best-of-N wall clock for the prep phase.
};

/// Compile + RLE + PRE + census under one analysis manager; \p UseEngine
/// selects whether alias queries route through the AliasClassEngine or
/// hit the pairwise oracle directly. The optimized program runs on the
/// VM once (first rep) for the checksum.
ArmResult runArm(const WorkloadInfo &W, bool UseEngine, int Reps) {
  ArmResult R;
  R.BestMs = 1e300;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    DiagnosticEngine Diags;
    Compilation C = compileSource(W.Source, Diags);
    if (!C.ok())
      fatal("workload %s failed to compile:\n%s", W.Name,
            Diags.str(W.Name).c_str());
    auto Start = std::chrono::steady_clock::now();
    AnalysisManager::Options Opts;
    Opts.Level = AliasLevel::SMFieldTypeRefs;
    Opts.Degrading = false;
    Opts.UseAliasClasses = UseEngine;
    AnalysisManager AM(C.ast(), C.types(), Opts);
    AM.bind(C.IR);
    RLEStats RLE = runRLE(C.IR, AM);
    PREStats PRE = runLoadPRE(C.IR, AM);
    const AliasClassEngine *ACE = AM.aliasClasses();
    CensusResult Census = ACE ? countAliasPairs(C.IR, *ACE, AM.oracle())
                              : countAliasPairs(C.IR, AM.oracle());
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
    if (Ms < R.BestMs)
      R.BestMs = Ms;
    if (Rep != 0)
      continue;
    R.Queries = AM.instrumented()->stats().totalQueries();
    R.Hoisted = RLE.Hoisted;
    R.Replaced = RLE.Replaced;
    R.PREInserted = PRE.Inserted;
    R.PREReplaced = PRE.Replaced;
    R.LocalPairs = Census.LocalPairs;
    R.GlobalPairs = Census.GlobalPairs;
    RunOutcome Out;
    execute(C, Out);
    R.Checksum = Out.Checksum;
  }
  return R;
}

} // namespace

int main(int argc, char **argv) {
  JsonReport Report("bench_queries", argc, argv);
  std::printf("Alias-class query engine: oracle queries per arrangement\n");
  std::printf("(RLE + PRE + census at SMFieldTypeRefs; identical results "
              "required)\n\n");
  std::printf("%-14s %12s %12s %8s | %9s %9s %8s\n", "Program", "Pairwise",
              "Engine", "Reduct", "Base ms", "Eng ms", "Speedup");

  const int Reps = 3;
  uint64_t TotalBase = 0, TotalEngine = 0;
  for (const WorkloadInfo &W : allWorkloads()) {
    if (W.Interactive)
      continue; // no Main to execute, so no checksum to compare
    ArmResult Base = runArm(W, /*UseEngine=*/false, Reps);
    ArmResult Eng = runArm(W, /*UseEngine=*/true, Reps);

    if (Base.Checksum != Eng.Checksum)
      fatal("%s: engine arrangement changed the checksum (%lld != %lld)",
            W.Name, static_cast<long long>(Base.Checksum),
            static_cast<long long>(Eng.Checksum));
    if (Base.Hoisted != Eng.Hoisted || Base.Replaced != Eng.Replaced ||
        Base.PREInserted != Eng.PREInserted ||
        Base.PREReplaced != Eng.PREReplaced)
      fatal("%s: engine arrangement changed the optimization decisions "
            "(RLE %u+%u/PRE %u+%u vs RLE %u+%u/PRE %u+%u)",
            W.Name, Base.Hoisted, Base.Replaced, Base.PREInserted,
            Base.PREReplaced, Eng.Hoisted, Eng.Replaced, Eng.PREInserted,
            Eng.PREReplaced);
    if (Base.LocalPairs != Eng.LocalPairs ||
        Base.GlobalPairs != Eng.GlobalPairs)
      fatal("%s: engine census disagrees with the pairwise census", W.Name);

    TotalBase += Base.Queries;
    TotalEngine += Eng.Queries;
    double Reduction = Eng.Queries
                           ? static_cast<double>(Base.Queries) /
                                 static_cast<double>(Eng.Queries)
                           : 0.0;
    double Speedup = ratioOf(Base.BestMs, Eng.BestMs);
    std::printf("%-14s %12llu %12llu %7.1fx | %9.2f %9.2f %7.2fx\n", W.Name,
                static_cast<unsigned long long>(Base.Queries),
                static_cast<unsigned long long>(Eng.Queries), Reduction,
                Base.BestMs, Eng.BestMs, Speedup);
    Report.record(W.Name)
        .set("queries_baseline", Base.Queries)
        .set("queries_engine", Eng.Queries)
        .set("query_reduction", Reduction)
        .set("checksum", Base.Checksum)
        .set("rle_removed", Base.Hoisted + Base.Replaced)
        .set("pre_inserted", Base.PREInserted)
        .set("prep_ms_baseline", Base.BestMs)
        .set("prep_ms_engine", Eng.BestMs)
        .set("prep_speedup", Speedup);
  }

  double Overall = TotalEngine ? static_cast<double>(TotalBase) /
                                     static_cast<double>(TotalEngine)
                               : 0.0;
  std::printf("\nOverall: %llu pairwise-oracle queries vs %llu through the "
              "engine (%.1fx reduction)\n",
              static_cast<unsigned long long>(TotalBase),
              static_cast<unsigned long long>(TotalEngine), Overall);
  if (TotalBase < 2 * TotalEngine)
    fatal("alias-class engine saved less than half the oracle queries "
          "(%llu vs %llu)",
          static_cast<unsigned long long>(TotalBase),
          static_cast<unsigned long long>(TotalEngine));
  return 0;
}
