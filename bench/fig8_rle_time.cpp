//===- fig8_rle_time.cpp - Figure 8: simulated impact of RLE --------------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Regenerates Figure 8 ("Impact of RLE"): simulated execution time of
// each benchmark after RLE under the three analyses, as a percent of the
// original running time (32KB direct-mapped cache, Section 3.4.2). The
// paper's shape: 92-99% (1-8% improvement, ~4% average), with the three
// variants nearly indistinguishable at run time.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace tbaa;
using namespace tbaa::bench;

int main(int argc, char **argv) {
  JsonReport Report("fig8_rle_time", argc, argv);
  std::printf("Figure 8: Impact of RLE on simulated execution time\n");
  std::printf("(percent of original running time; lower is better)\n\n");
  std::printf("%-14s %6s | %10s %14s %16s\n", "Program", "Base",
              "TypeDecl", "Types+Fields", "Types+Flds+Merges");
  double Sum[3] = {0, 0, 0};
  unsigned N = 0;
  for (const WorkloadInfo &W : allWorkloads()) {
    if (W.Interactive)
      continue; // the paper has no dynamic data for dom/postcard
    RunOutcome Base = run(W, RunConfig{});
    const AliasLevel Levels[3] = {AliasLevel::TypeDecl,
                                  AliasLevel::FieldTypeDecl,
                                  AliasLevel::SMFieldTypeRefs};
    double Pct[3];
    for (int L = 0; L != 3; ++L) {
      RunConfig Config;
      Config.ApplyRLE = true;
      Config.Level = Levels[L];
      RunOutcome Out = run(W, Config);
      if (Out.Checksum != Base.Checksum)
        fatal("%s: RLE changed the checksum!", W.Name);
      Pct[L] = percentOf(Out.Cycles, Base.Cycles);
      Sum[L] += Pct[L];
    }
    ++N;
    std::printf("%-14s %6d | %9.1f%% %13.1f%% %15.1f%%\n", W.Name, 100,
                Pct[0], Pct[1], Pct[2]);
    Report.record(W.Name)
        .set("base_cycles", Base.Cycles)
        .set("percent_typedecl", Pct[0])
        .set("percent_fieldtypedecl", Pct[1])
        .set("percent_smfieldtyperefs", Pct[2]);
  }
  std::printf("\nAverage: TypeDecl %.1f%%, Types+Fields %.1f%%, "
              "Types+Fields+Merges %.1f%%\n",
              Sum[0] / N, Sum[1] / N, Sum[2] / N);
  std::printf("Paper's shape: averages ~96%% for all three variants "
              "(92-99%% per program); precision differences barely move "
              "run time.\n");
  return 0;
}
