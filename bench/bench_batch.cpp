//===- bench_batch.cpp - Batch service overhead measurements --------------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Measures what fault isolation costs: the fork/reap round trip of one
// sandboxed worker, pool throughput as parallelism grows (trivial jobs,
// so the numbers are pure orchestration overhead), the watchdog's
// bookkeeping at fleet sizes, and journal append+load. These bound how
// small a compilation job can be before m3batch's per-job isolation
// stops paying for itself.
//
//===----------------------------------------------------------------------===//

#include "service/Journal.h"
#include "service/Worker.h"
#include "service/WorkerPool.h"
#include "support/Clock.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <unistd.h>

using namespace tbaa;

namespace {

void BM_WorkerRoundTrip(benchmark::State &State) {
  for (auto _ : State) {
    WorkerResult R = runInWorker([](int) { return 0; }, {});
    if (R.Status != WorkerStatus::Exited || R.ExitCode != 0)
      State.SkipWithError("worker failed");
  }
}
BENCHMARK(BM_WorkerRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_WorkerRoundTripWithPayload(benchmark::State &State) {
  for (auto _ : State) {
    WorkerResult R = runInWorker(
        [](int Fd) {
          ::dprintf(Fd, "{\"main\":123456789}\n");
          return 0;
        },
        {});
    benchmark::DoNotOptimize(R.Payload.data());
  }
}
BENCHMARK(BM_WorkerRoundTripWithPayload)->Unit(benchmark::kMicrosecond);

/// 32 trivial jobs through pools of growing width: wall time is pure
/// pool overhead (spawn, poll, drain, reap), and the curve shows where
/// extra slots stop helping on this host.
void BM_PoolThroughput(benchmark::State &State) {
  const unsigned Parallelism = static_cast<unsigned>(State.range(0));
  const uint64_t Jobs = 32;
  for (auto _ : State) {
    WorkerPool Pool(Parallelism);
    for (uint64_t K = 0; K != Jobs; ++K)
      Pool.enqueue({K, [](int) { return 0; }, {}, 0});
    uint64_t Done = 0;
    Pool.run([&](uint64_t, const WorkerResult &) { ++Done; });
    if (Done != Jobs)
      State.SkipWithError("pool lost jobs");
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations() * Jobs));
}
BENCHMARK(BM_PoolThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_WatchdogSweep(benchmark::State &State) {
  const int Fleet = static_cast<int>(State.range(0));
  Watchdog Dog;
  for (int Pid = 1; Pid <= Fleet; ++Pid)
    Dog.arm(Pid, Deadline{static_cast<uint64_t>(1000 + Pid)});
  uint64_t Now = 1000 + static_cast<uint64_t>(Fleet) / 2;
  for (auto _ : State)
    benchmark::DoNotOptimize(Dog.expired(Now));
}
BENCHMARK(BM_WatchdogSweep)->Arg(16)->Arg(256);

void BM_JournalAppend(benchmark::State &State) {
  std::string Path = "/tmp/tbaa-bench-journal.jsonl";
  Journal J;
  if (!J.open(Path, /*Truncate=*/true)) {
    State.SkipWithError("cannot open journal");
    return;
  }
  JournalRecord R;
  R.Job = "bench";
  R.Outcome = JobOutcome::Ok;
  R.Final = true;
  R.HasResult = true;
  R.Result = 123456789;
  for (auto _ : State) {
    J.append(R);
    ++R.Attempt;
  }
  ::unlink(Path.c_str());
}
BENCHMARK(BM_JournalAppend);

void BM_JournalLoad(benchmark::State &State) {
  std::string Path = "/tmp/tbaa-bench-journal-load.jsonl";
  {
    Journal J;
    if (!J.open(Path, /*Truncate=*/true)) {
      State.SkipWithError("cannot open journal");
      return;
    }
    JournalRecord R;
    R.Job = "bench";
    R.HasResult = true;
    for (unsigned I = 0; I != 1000; ++I) {
      R.Attempt = I + 1;
      J.append(R);
    }
  }
  for (auto _ : State) {
    std::vector<JournalRecord> Records;
    std::string Error;
    if (!Journal::load(Path, Records, Error) || Records.size() != 1000)
      State.SkipWithError("journal load failed");
    benchmark::DoNotOptimize(Records.data());
  }
  State.SetItemsProcessed(State.iterations() * 1000);
  ::unlink(Path.c_str());
}
BENCHMARK(BM_JournalLoad)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
