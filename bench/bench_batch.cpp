//===- bench_batch.cpp - Batch service overhead measurements --------------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Measures what fault isolation costs: the fork/reap round trip of one
// sandboxed worker, pool throughput as parallelism grows (trivial jobs,
// so the numbers are pure orchestration overhead), the watchdog's
// bookkeeping at fleet sizes, and journal append+load. These bound how
// small a compilation job can be before m3batch's per-job isolation
// stops paying for itself.
//
// `--warm-vs-cold` runs the comparison those bounds motivate: the same
// real compile jobs through m3batch's cold fork-per-job discipline and
// through an m3serve warm-worker daemon, reporting round-trip latency
// for both arms (and to `--json <file>`). The binary exits non-zero if
// the two arms disagree on any job's result or the warm median fails to
// beat the cold one -- warm reuse must pay for its complexity.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "CompileJobs.h"
#include "core/PartitionCache.h"
#include "service/Batch.h"
#include "service/Journal.h"
#include "service/Serve.h"
#include "service/Worker.h"
#include "service/WorkerPool.h"
#include "support/Clock.h"
#include "support/Socket.h"
#include "support/Trace.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

using namespace tbaa;

namespace {

void BM_WorkerRoundTrip(benchmark::State &State) {
  for (auto _ : State) {
    WorkerResult R = runInWorker([](int) { return 0; }, {});
    if (R.Status != WorkerStatus::Exited || R.ExitCode != 0)
      State.SkipWithError("worker failed");
  }
}
BENCHMARK(BM_WorkerRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_WorkerRoundTripWithPayload(benchmark::State &State) {
  for (auto _ : State) {
    WorkerResult R = runInWorker(
        [](int Fd) {
          ::dprintf(Fd, "{\"main\":123456789}\n");
          return 0;
        },
        {});
    benchmark::DoNotOptimize(R.Payload.data());
  }
}
BENCHMARK(BM_WorkerRoundTripWithPayload)->Unit(benchmark::kMicrosecond);

/// 32 trivial jobs through pools of growing width: wall time is pure
/// pool overhead (spawn, poll, drain, reap), and the curve shows where
/// extra slots stop helping on this host.
void BM_PoolThroughput(benchmark::State &State) {
  const unsigned Parallelism = static_cast<unsigned>(State.range(0));
  const uint64_t Jobs = 32;
  for (auto _ : State) {
    WorkerPool Pool(Parallelism);
    for (uint64_t K = 0; K != Jobs; ++K)
      Pool.enqueue({K, [](int) { return 0; }, {}, 0});
    uint64_t Done = 0;
    Pool.run([&](uint64_t, const WorkerResult &) { ++Done; });
    if (Done != Jobs)
      State.SkipWithError("pool lost jobs");
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations() * Jobs));
}
BENCHMARK(BM_PoolThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_WatchdogSweep(benchmark::State &State) {
  const int Fleet = static_cast<int>(State.range(0));
  Watchdog Dog;
  for (int Pid = 1; Pid <= Fleet; ++Pid)
    Dog.arm(Pid, Deadline{static_cast<uint64_t>(1000 + Pid)});
  uint64_t Now = 1000 + static_cast<uint64_t>(Fleet) / 2;
  for (auto _ : State)
    benchmark::DoNotOptimize(Dog.expired(Now));
}
BENCHMARK(BM_WatchdogSweep)->Arg(16)->Arg(256);

// Arg(0): plain O_APPEND writes (the default). Arg(1): --journal-fsync,
// an fsync per record -- the price of power-loss durability, measured
// so the default's choice to skip it stays an informed one.
void BM_JournalAppend(benchmark::State &State) {
  std::string Path = "/tmp/tbaa-bench-journal.jsonl";
  Journal J;
  if (!J.open(Path, /*Truncate=*/true,
              /*FsyncEachRecord=*/State.range(0) != 0)) {
    State.SkipWithError("cannot open journal");
    return;
  }
  JournalRecord R;
  R.Job = "bench";
  R.Outcome = JobOutcome::Ok;
  R.Final = true;
  R.HasResult = true;
  R.Result = 123456789;
  for (auto _ : State) {
    J.append(R);
    ++R.Attempt;
  }
  ::unlink(Path.c_str());
}
BENCHMARK(BM_JournalAppend)->Arg(0)->Arg(1);

void BM_JournalLoad(benchmark::State &State) {
  std::string Path = "/tmp/tbaa-bench-journal-load.jsonl";
  {
    Journal J;
    if (!J.open(Path, /*Truncate=*/true)) {
      State.SkipWithError("cannot open journal");
      return;
    }
    JournalRecord R;
    R.Job = "bench";
    R.HasResult = true;
    for (unsigned I = 0; I != 1000; ++I) {
      R.Attempt = I + 1;
      J.append(R);
    }
  }
  for (auto _ : State) {
    std::vector<JournalRecord> Records;
    std::string Error;
    if (!Journal::load(Path, Records, Error) || Records.size() != 1000)
      State.SkipWithError("journal load failed");
    benchmark::DoNotOptimize(Records.data());
  }
  State.SetItemsProcessed(State.iterations() * 1000);
  ::unlink(Path.c_str());
}
BENCHMARK(BM_JournalLoad)->Unit(benchmark::kMicrosecond);

//===----------------------------------------------------------------------===//
// --warm-vs-cold: m3batch's fork-per-job vs the m3serve warm pool
//===----------------------------------------------------------------------===//

/// One arm's measurements: per-job round trips plus the job results the
/// identity check compares across arms.
struct ArmOutcome {
  std::vector<uint64_t> RoundTripUs;
  std::vector<int64_t> Checksums;
  bool Ok = true;
};

uint64_t quantileUs(std::vector<uint64_t> Samples, double Q) {
  if (Samples.empty())
    return 0;
  std::sort(Samples.begin(), Samples.end());
  size_t Idx = static_cast<size_t>(Q * static_cast<double>(Samples.size()));
  return Samples[std::min(Idx, Samples.size() - 1)];
}

/// The m3batch discipline for one job: fork + sandbox + lazy static
/// initialisation + reap. Source resolution happens in the child, like
/// m3batch's makeJob, so the parent's pages stay cold.
void runColdJob(const std::string &Name, const BatchConfig &Cfg,
                const jobs::CompileFlags &Flags, const WorkerLimits &Limits,
                ArmOutcome &Arm) {
  uint64_t T0 = trace::nowUs();
  WorkerResult R = runInWorker(
      [&](int Fd) {
        std::string Src;
        if (!jobs::resolveJobSource(Name, Src))
          return 2;
        return jobs::runCompileJob(Src, Cfg, Flags, DegradeLevel::Full, Fd);
      },
      Limits);
  Arm.RoundTripUs.push_back(trace::nowUs() - T0);
  std::map<std::string, std::string> Payload;
  if (R.Status != WorkerStatus::Exited || R.ExitCode != 0 ||
      !parseFlatJSONObject(R.Payload.substr(0, R.Payload.find('\n')),
                           Payload) ||
      !Payload.count("main")) {
    std::fprintf(stderr, "warm-vs-cold: cold job '%s' failed (%s)\n",
                 Name.c_str(), workerStatusName(R.Status));
    Arm.Ok = false;
    Arm.Checksums.push_back(0);
    return;
  }
  Arm.Checksums.push_back(std::strtoll(Payload["main"].c_str(), nullptr, 10));
}

/// Reads one newline-terminated response from a blocking socket.
bool readResponseLine(int Fd, std::string &Line) {
  Line.clear();
  char C;
  for (;;) {
    ssize_t N = ::read(Fd, &C, 1);
    if (N <= 0)
      return false;
    if (C == '\n')
      return true;
    Line.push_back(C);
  }
}

bool submitOne(int Fd, const std::string &Name,
               std::map<std::string, std::string> &Response) {
  std::string Req = "{\"job\":\"" + Name + "\"}\n";
  if (!net::writeAllPolled(Fd, Req.data(), Req.size()))
    return false;
  std::string Line;
  return readResponseLine(Fd, Line) && parseFlatJSONObject(Line, Response) &&
         Response["outcome"] == "ok" && Response.count("result");
}

/// The m3serve side of the comparison: a daemon with one warm worker,
/// jobs submitted over its socket.
struct WarmDaemon {
  pid_t Pid = -1;
  int Fd = -1;
  std::string Socket;
  bool Ok = false;

  WarmDaemon(const BatchConfig &Cfg, const jobs::CompileFlags &Flags,
             const WorkerLimits &Limits) {
    Socket = "/tmp/tbaa-bench-serve-" + std::to_string(::getpid()) + ".sock";
    Pid = ::fork();
    if (Pid == 0) {
      ServeOptions SO;
      SO.SocketPath = Socket;
      SO.Workers = 1;
      SO.Limits = Limits;
      SO.IdleExitMs = 60000;
      std::string Error;
      int Rc = runServe(
          SO,
          [&](const ServeRequest &Req, DegradeLevel D, int PayloadFd) {
            // Per-job registry resets happen in warmWorkerMain.
            std::string Src;
            if (!jobs::resolveJobSource(Req.Job, Src))
              return 2;
            return jobs::runCompileJob(Src, Cfg, Flags, D, PayloadFd);
          },
          Error);
      if (Rc != 0)
        std::fprintf(stderr, "warm-vs-cold: daemon: %s\n", Error.c_str());
      ::_exit(Rc);
    }
    if (Pid < 0)
      return;
    for (unsigned Spin = 0; Spin != 200 && Fd < 0; ++Spin) {
      Fd = net::connectUnix(Socket);
      if (Fd < 0)
        ::usleep(10'000);
    }
    Ok = Fd >= 0;
  }

  void runJob(const std::string &Name, ArmOutcome &Arm) {
    std::map<std::string, std::string> Response;
    uint64_t T0 = trace::nowUs();
    if (!submitOne(Fd, Name, Response)) {
      std::fprintf(stderr, "warm-vs-cold: warm job '%s' failed\n",
                   Name.c_str());
      Arm.Ok = false;
      Arm.Checksums.push_back(0);
      return;
    }
    Arm.RoundTripUs.push_back(trace::nowUs() - T0);
    Arm.Checksums.push_back(
        std::strtoll(Response["result"].c_str(), nullptr, 10));
  }

  /// SIGTERM drain; true when the daemon exits 0.
  bool stop() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
    if (Pid < 0)
      return false;
    ::kill(Pid, SIGTERM);
    int Status = 0;
    ::waitpid(Pid, &Status, 0);
    Pid = -1;
    ::unlink(Socket.c_str());
    return WIFEXITED(Status) && WEXITSTATUS(Status) == 0;
  }
};

int runWarmVsCold(int argc, char **argv) {
  unsigned Rounds = 6;
  for (int I = 1; I < argc; ++I)
    if (!std::strncmp(argv[I], "--rounds=", 9))
      Rounds = static_cast<unsigned>(std::strtoul(argv[I] + 9, nullptr, 10));
  const std::vector<std::string> Workloads = {"format", "dformat", "pp"};
  std::vector<std::string> JobNames;
  for (unsigned R = 0; R != Rounds; ++R)
    for (const std::string &W : Workloads)
      JobNames.push_back(W);

  BatchConfig Cfg;
  jobs::CompileFlags Flags;
  Flags.Pipeline = true;
  WorkerLimits Limits;
  Limits.WallMs = 10000;

  bench::JsonReport Report("bench_batch", argc, argv);

  // The daemon forks before any compile runs in this process, so its
  // worker warms itself up the way cold children cannot: cold jobs keep
  // forking from a parent that never compiled anything and pay
  // m3batch's true lazy-init bill every time.
  WarmDaemon Daemon(Cfg, Flags, Limits);
  ArmOutcome Warm;
  {
    ArmOutcome Warmup;
    if (!Daemon.Ok) {
      std::fprintf(stderr, "warm-vs-cold: daemon failed to start\n");
      Warm.Ok = false;
    } else {
      Daemon.runJob(JobNames.front(), Warmup);
      Warm.Ok = Warmup.Ok;
    }
  }

  // Interleave the arms round by round: ambient load, cpufreq and
  // thermal drift then bias both sides equally instead of whichever
  // arm happens to run later.
  ArmOutcome Cold;
  for (unsigned R = 0; R != Rounds && Warm.Ok; ++R)
    for (const std::string &W : Workloads) {
      runColdJob(W, Cfg, Flags, Limits, Cold);
      Daemon.runJob(W, Warm);
    }
  if (!Daemon.stop()) {
    std::fprintf(stderr, "warm-vs-cold: daemon did not drain cleanly\n");
    Warm.Ok = false;
  }

  bool Identical = Cold.Checksums.size() == JobNames.size() &&
                   Warm.Checksums.size() == JobNames.size();
  for (size_t I = 0; Identical && I != JobNames.size(); ++I)
    if (Cold.Checksums[I] != Warm.Checksums[I]) {
      std::fprintf(stderr,
                   "warm-vs-cold: job '%s' diverged: cold %lld != warm %lld\n",
                   JobNames[I].c_str(),
                   static_cast<long long>(Cold.Checksums[I]),
                   static_cast<long long>(Warm.Checksums[I]));
      Identical = false;
    }

  uint64_t ColdP50 = quantileUs(Cold.RoundTripUs, 0.50);
  uint64_t ColdP90 = quantileUs(Cold.RoundTripUs, 0.90);
  uint64_t WarmP50 = quantileUs(Warm.RoundTripUs, 0.50);
  uint64_t WarmP90 = quantileUs(Warm.RoundTripUs, 0.90);
  // Scheduling noise only ever *inflates* a round trip, so the floor of
  // each arm is its structural cost -- that is what the gate compares.
  uint64_t ColdMin = Cold.RoundTripUs.empty()
                         ? 0
                         : *std::min_element(Cold.RoundTripUs.begin(),
                                             Cold.RoundTripUs.end());
  uint64_t WarmMin = Warm.RoundTripUs.empty()
                         ? 0
                         : *std::min_element(Warm.RoundTripUs.begin(),
                                             Warm.RoundTripUs.end());

  std::printf("warm-vs-cold: %zu jobs per arm (format/dformat/pp x %u)\n",
              JobNames.size(), Rounds);
  std::printf("  cold fork-per-job   min %8llu us   p50 %8llu us   "
              "p90 %8llu us\n",
              static_cast<unsigned long long>(ColdMin),
              static_cast<unsigned long long>(ColdP50),
              static_cast<unsigned long long>(ColdP90));
  std::printf("  warm m3serve pool   min %8llu us   p50 %8llu us   "
              "p90 %8llu us\n",
              static_cast<unsigned long long>(WarmMin),
              static_cast<unsigned long long>(WarmP50),
              static_cast<unsigned long long>(WarmP90));
  if (WarmMin)
    std::printf("  floor speedup       %.2fx\n",
                static_cast<double>(ColdMin) / static_cast<double>(WarmMin));

  for (const auto &[Name, Arm] :
       {std::pair<const char *, const ArmOutcome &>{"cold", Cold},
        std::pair<const char *, const ArmOutcome &>{"warm", Warm}})
    Report.record(Name)
        .set("jobs", static_cast<uint64_t>(Arm.RoundTripUs.size()))
        .set("round_trip_p50_us", quantileUs(Arm.RoundTripUs, 0.50))
        .set("round_trip_p90_us", quantileUs(Arm.RoundTripUs, 0.90))
        .set("round_trip_min_us",
             Arm.RoundTripUs.empty()
                 ? uint64_t{0}
                 : *std::min_element(Arm.RoundTripUs.begin(),
                                     Arm.RoundTripUs.end()))
        .set("round_trip_max_us",
             Arm.RoundTripUs.empty()
                 ? uint64_t{0}
                 : *std::max_element(Arm.RoundTripUs.begin(),
                                     Arm.RoundTripUs.end()))
        .set("results_identical", Identical ? "yes" : "no");

  if (!Cold.Ok || !Warm.Ok) {
    std::fprintf(stderr, "warm-vs-cold: FAIL (an arm lost jobs)\n");
    return 1;
  }
  if (!Identical) {
    std::fprintf(stderr, "warm-vs-cold: FAIL (results differ across arms)\n");
    return 1;
  }
  if (WarmMin >= ColdMin) {
    std::fprintf(stderr,
                 "warm-vs-cold: FAIL (warm floor %llu us not below cold "
                 "floor %llu us)\n",
                 static_cast<unsigned long long>(WarmMin),
                 static_cast<unsigned long long>(ColdMin));
    return 1;
  }
  std::printf("warm-vs-cold: OK\n");
  return 0;
}

//===----------------------------------------------------------------------===//
// --partition-cache: the shared partition cache's warm-batch payoff
//===----------------------------------------------------------------------===//

/// One m3batch-style run over \p Names inside this process (the segment
/// owner), journaled so per-job wall times and pcache tallies can be
/// read back.
struct PcacheBatch {
  std::vector<JournalRecord> Records;
  bool Ok = false;
};

PcacheBatch runPcacheBatch(const std::vector<std::string> &Names,
                           const BatchConfig &Cfg,
                           const jobs::CompileFlags &Flags,
                           const std::string &JournalPath) {
  PcacheBatch Out;
  std::vector<BatchJob> Jobs;
  for (const std::string &Name : Names) {
    BatchJob J;
    J.Id = Name;
    J.Make = [Name, &Cfg, &Flags](DegradeLevel D) -> WorkerFn {
      return [Name, &Cfg, &Flags, D](int Fd) {
        std::string Src;
        if (!jobs::resolveJobSource(Name, Src))
          return 2;
        return jobs::runCompileJob(Src, Cfg, Flags, D, Fd);
      };
    };
    Jobs.push_back(std::move(J));
  }
  BatchOptions BO;
  BO.Parallelism = 4;
  BO.Limits.WallMs = 20000;
  BO.JournalPath = JournalPath;
  BatchResult R = runBatch(Jobs, BO);
  if (!R.ok() || !R.allOk()) {
    std::fprintf(stderr, "partition-cache: batch failed (%s)\n",
                 R.Error.empty() ? "a job did not settle ok" : R.Error.c_str());
    return Out;
  }
  std::string Error;
  if (!Journal::load(JournalPath, Out.Records, Error)) {
    std::fprintf(stderr, "partition-cache: %s\n", Error.c_str());
    return Out;
  }
  Out.Ok = true;
  return Out;
}

/// A journal line with every timing-, counter- and environment-dependent
/// key stripped: what must be byte-identical between the cache-off and
/// cached arms.
std::string normalizeRecord(const JournalRecord &R) {
  std::map<std::string, std::string> M;
  if (!parseFlatJSONObject(R.toJSONLine(), M))
    return "<unparseable>";
  std::string Out;
  for (const auto &[K, V] : M) {
    if (K == "wall_ms" || K == "cpu_ms" || K == "peak_rss_kb" ||
        K == "minflt" || K == "majflt" || K == "backoff_ms" || K == "crc" ||
        K.rfind("oracle_", 0) == 0 || K.rfind("pcache_", 0) == 0)
      continue;
    Out += K + "=" + V + ";";
  }
  return Out;
}

std::vector<std::string> normalizeSorted(const std::vector<JournalRecord> &Rs) {
  std::vector<std::string> Out;
  for (const JournalRecord &R : Rs)
    Out.push_back(normalizeRecord(R));
  std::sort(Out.begin(), Out.end());
  return Out;
}

int runPartitionCacheBench(int argc, char **argv) {
  unsigned Modules = 16;
  for (int I = 1; I < argc; ++I)
    if (!std::strncmp(argv[I], "--modules=", 10))
      Modules = static_cast<unsigned>(std::strtoul(argv[I] + 10, nullptr, 10));

  // Every gen:K:s40 module carries the same 40-type shape shelf; the
  // seed varies the procedure bodies (and so the usage facts), so batch
  // A populates one cache entry per seed and batch B -- the same jobs
  // again -- must hit on all of them.
  std::vector<std::string> Names;
  for (unsigned K = 1; K <= Modules; ++K)
    Names.push_back("gen:" + std::to_string(K) + ":s40");

  BatchConfig Cfg;
  jobs::CompileFlags Flags;
  bench::JsonReport Report("bench_batch", argc, argv);

  std::string Base = "/tmp/tbaa-bench-pcache-" + std::to_string(::getpid());
  struct Arm {
    const char *Name;
    PartitionCacheMode Mode;
    PcacheBatch A, B;
  } Arms[] = {{"off", PartitionCacheMode::Off, {}, {}},
              {"shared", PartitionCacheMode::Shared, {}, {}}};

  for (Arm &A : Arms) {
    // Configure before the first fork of the arm: shared workers must
    // inherit the parent-owned segment.
    PartitionCacheRuntime::instance().configure(A.Mode);
    A.A = runPcacheBatch(Names, Cfg, Flags, Base + "-" + A.Name + "-a.jsonl");
    A.B = runPcacheBatch(Names, Cfg, Flags, Base + "-" + A.Name + "-b.jsonl");
  }
  PartitionCacheRuntime::instance().configure(PartitionCacheMode::Off);
  for (const Arm &A : Arms)
    for (const char *Round : {"-a.jsonl", "-b.jsonl"})
      ::unlink((Base + "-" + A.Name + Round).c_str());

  bool Ok = true;
  for (const Arm &A : Arms)
    Ok = Ok && A.A.Ok && A.B.Ok;
  if (!Ok) {
    std::fprintf(stderr, "partition-cache: FAIL (a batch did not complete)\n");
    return 1;
  }

  // Identity: every journal, both rounds, both arms, must agree once
  // timing and counter keys are stripped. The cache may only buy time.
  std::vector<std::string> Golden = normalizeSorted(Arms[0].A.Records);
  for (const Arm &A : Arms)
    for (const PcacheBatch *B : {&A.A, &A.B})
      if (normalizeSorted(B->Records) != Golden) {
        std::fprintf(stderr,
                     "partition-cache: FAIL (journal results for arm '%s' "
                     "differ from the cache-off golden run)\n",
                     A.Name);
        Ok = false;
      }

  auto WallsOf = [](const PcacheBatch &B) {
    std::vector<uint64_t> W;
    for (const JournalRecord &R : B.Records)
      W.push_back(R.WallMs);
    return W;
  };
  uint64_t OffMedian = quantileUs(WallsOf(Arms[0].B), 0.50);
  uint64_t CachedMedian = quantileUs(WallsOf(Arms[1].B), 0.50);
  uint64_t Hits = 0, Misses = 0;
  for (const JournalRecord &R : Arms[1].B.Records) {
    Hits += R.PcacheHits;
    Misses += R.PcacheMisses;
  }
  double Speedup = static_cast<double>(OffMedian) /
                   static_cast<double>(std::max<uint64_t>(CachedMedian, 1));

  std::printf("partition-cache: %u modules sharing one type shape, warm "
              "batch medians\n",
              Modules);
  std::printf("  cache off     median %4llu ms\n",
              static_cast<unsigned long long>(OffMedian));
  std::printf("  cache shared  median %4llu ms   (%llu hits, %llu misses)\n",
              static_cast<unsigned long long>(CachedMedian),
              static_cast<unsigned long long>(Hits),
              static_cast<unsigned long long>(Misses));
  std::printf("  speedup       %.2fx\n", Speedup);

  Report.record("off").set("warm_median_wall_ms", OffMedian);
  Report.record("shared")
      .set("warm_median_wall_ms", CachedMedian)
      .set("pcache_hits", Hits)
      .set("pcache_misses", Misses);

  if (Hits < Modules - 1) {
    std::fprintf(stderr,
                 "partition-cache: FAIL (only %llu cache hits in the warm "
                 "batch; expected >= %u)\n",
                 static_cast<unsigned long long>(Hits), Modules - 1);
    Ok = false;
  }
  if (Speedup < 1.3) {
    std::fprintf(stderr,
                 "partition-cache: FAIL (warm median speedup %.2fx < 1.3x)\n",
                 Speedup);
    Ok = false;
  }
  if (!Ok)
    return 1;
  std::printf("partition-cache: OK\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--warm-vs-cold"))
      return runWarmVsCold(argc, argv);
  for (int I = 1; I < argc; ++I)
    if (!std::strcmp(argv[I], "--partition-cache"))
      return runPartitionCacheBench(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
