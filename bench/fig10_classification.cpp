//===- fig10_classification.cpp - Figure 10: sources of redundancy --------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Regenerates Figure 10 ("Source of Redundant Loads after Optimizations"):
// the remaining dynamic redundant loads after TBAA+RLE, classified as
//
//   Encapsulated  - implicit in the representation (dope vectors, method
//                   descriptors); the paper's dominant category
//   Conditional   - partially redundant (PRE would catch them)
//   Breakup       - split access paths (missing copy propagation)
//   AliasFailure  - a perfect alias oracle would still let RLE remove
//                   them (the paper found none)
//   Rest          - everything else
//
// Fractions are of the ORIGINAL program's heap references, matching the
// figure's y axis.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "limit/LimitAnalysis.h"

using namespace tbaa;
using namespace tbaa::bench;

int main(int argc, char **argv) {
  JsonReport Report("fig10_classification", argc, argv);
  std::printf("Figure 10: Source of Redundant Loads after Optimizations\n");
  std::printf("(fraction of original heap references)\n\n");
  std::printf("%-14s %8s %8s %8s %8s %8s %8s\n", "Program", "Encap",
              "AliasF", "Cond", "Breakup", "Rest", "Total");
  double TotalAlias = 0, TotalRedundant = 0;
  for (const WorkloadInfo &W : allWorkloads()) {
    if (W.Interactive)
      continue; // the paper has no dynamic data for dom/postcard
    // Original heap-reference count for normalization.
    RunOutcome Base = run(W, RunConfig{});
    double OrigHeap = static_cast<double>(Base.Stats.HeapLoads);

    // Optimized program with classification monitors.
    RunConfig Config;
    Config.ApplyRLE = true;
    Config.Level = AliasLevel::SMFieldTypeRefs;
    RunOutcome Opt;
    Compilation C = prepare(W, Config, Opt);

    TBAAContext Ctx(C.ast(), C.types(), {});
    auto TBAAOracle = makeAliasOracle(Ctx, AliasLevel::SMFieldTypeRefs);
    auto Perfect = makeAliasOracle(Ctx, AliasLevel::Perfect);
    std::vector<uint32_t> Conditional =
        findPartiallyRedundantLoads(C.IR, *TBAAOracle);
    std::vector<uint32_t> AliasFail = findRemovableLoads(C.IR, *Perfect);

    RedundantLoadMonitor Monitor;
    Monitor.configureClassifier(Conditional, AliasFail);
    execute(C, Opt, &Monitor);

    const RedundancyBreakdown &B = Monitor.breakdown();
    auto Frac = [&](uint64_t N) {
      return ratioOf(static_cast<double>(N), OrigHeap);
    };
    std::printf("%-14s %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f\n", W.Name,
                Frac(B.Encapsulated), Frac(B.AliasFailure),
                Frac(B.Conditional), Frac(B.Breakup), Frac(B.Rest),
                Frac(B.total()));
    Report.record(W.Name)
        .set("encapsulated", Frac(B.Encapsulated))
        .set("alias_failure", Frac(B.AliasFailure))
        .set("conditional", Frac(B.Conditional))
        .set("breakup", Frac(B.Breakup))
        .set("rest", Frac(B.Rest))
        .set("total", Frac(B.total()));
    TotalAlias += static_cast<double>(B.AliasFailure);
    TotalRedundant += static_cast<double>(B.total());
  }
  std::printf("\nAlias failures across the suite: %.0f of %.0f remaining "
              "redundant loads (%.1f%%)\n",
              TotalAlias, TotalRedundant,
              percentOf(TotalAlias, TotalRedundant));
  std::printf("Paper's shape: Encapsulation (dope vectors) dominates; "
              "zero confirmed alias failures; a more precise analysis "
              "could recover at most ~2.5%% more on average.\n");
  return 0;
}
