//===- BenchCommon.h - Shared harness for the paper's experiments -*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One configuration-driven runner used by every table/figure binary:
/// compile a workload, optionally apply method resolution + inlining,
/// copy propagation and RLE under a chosen alias analysis, execute on the
/// VM with the cache/timing simulator attached, and report counters.
///
/// Every binary also accepts `--json <file>`: a JsonReport collects one
/// record per workload and writes a machine-readable mirror of the
/// printed table, plus the statistics registry and the timing tree
/// (schema checked by tools/check_stats_json.py). Errors route through
/// fatal(), which flushes a partial report (complete=false) first.
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_BENCH_BENCHCOMMON_H
#define TBAA_BENCH_BENCHCOMMON_H

#include "analysis/AnalysisManager.h"
#include "core/AliasCensus.h"
#include "core/AliasOracle.h"
#include "core/InstrumentedOracle.h"
#include "core/TBAAContext.h"
#include "exec/VM.h"
#include "ir/Pipeline.h"
#include "opt/CopyProp.h"
#include "opt/Devirt.h"
#include "opt/Inline.h"
#include "opt/RLE.h"
#include "sim/CacheSim.h"
#include "support/JSONUtil.h"
#include "support/Metrics.h"
#include "support/Stats.h"
#include "support/Timing.h"
#include "workloads/Workloads.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>

namespace tbaa::bench {

struct RunConfig {
  bool ApplyRLE = false;
  AliasLevel Level = AliasLevel::SMFieldTypeRefs;
  bool OpenWorld = false;
  bool DevirtAndInline = false;
  bool CopyProp = false;
};

struct RunOutcome {
  int64_t Checksum = 0;
  unsigned SourceLines = 0;
  ExecStats Stats;
  uint64_t Cycles = 0;
  RLEStats RLE;
  unsigned Resolved = 0;
  unsigned Inlined = 0;
  OracleStats Oracle; ///< Alias-query tallies when RLE ran.
};

class JsonReport;

/// The report fatal() flushes before exiting, if one is live.
inline JsonReport *&activeReport() {
  static JsonReport *Active = nullptr;
  return Active;
}

/// Machine-readable sink behind `--json <file>`. One record per workload
/// row mirrors the printed table; the file also carries the statistics
/// registry and the timing tree. Written on destruction or by fatal().
class JsonReport {
public:
  JsonReport(const char *Bench, int argc, char **argv) : Bench(Bench) {
    for (int I = 1; I < argc; ++I)
      if (!std::strcmp(argv[I], "--json")) {
        if (I + 1 >= argc) {
          std::fprintf(stderr, "%s: --json requires a file argument\n",
                       Bench);
          std::exit(2);
        }
        Path = argv[I + 1];
      }
    if (enabled()) {
      TimerRegistry::instance().setEnabled(true);
      MetricsRegistry::instance().setEnabled(true);
    }
    activeReport() = this;
  }
  JsonReport(const JsonReport &) = delete;
  JsonReport &operator=(const JsonReport &) = delete;
  ~JsonReport() {
    flush(/*Complete=*/true);
    if (activeReport() == this)
      activeReport() = nullptr;
  }

  bool enabled() const { return !Path.empty(); }

  /// One table row. Values are rendered immediately, so the setters can
  /// take whatever the caller printed (NaN becomes null -- the schema
  /// checker rejects it rather than the writer producing invalid JSON).
  class Record {
  public:
    Record &set(const std::string &Key, uint64_t V) { return render(Key, V); }
    Record &set(const std::string &Key, int64_t V) { return render(Key, V); }
    Record &set(const std::string &Key, unsigned V) { return render(Key, V); }
    Record &set(const std::string &Key, int V) { return render(Key, V); }
    Record &set(const std::string &Key, double V) { return render(Key, V); }
    Record &set(const std::string &Key, const std::string &V) {
      return render(Key, V);
    }

  private:
    friend class JsonReport;
    template <typename T> Record &render(const std::string &Key, T V) {
      json::Writer W;
      W.value(V);
      Fields.emplace_back(Key, W.str());
      return *this;
    }
    std::string Workload;
    std::vector<std::pair<std::string, std::string>> Fields;
  };

  /// Starts the record for \p Workload. The reference stays valid across
  /// later record() calls (deque storage).
  Record &record(const std::string &Workload) {
    Records.emplace_back();
    Records.back().Workload = Workload;
    return Records.back();
  }

  /// Writes the report. Idempotent: fatal() may flush (with
  /// Complete=false) before the destructor runs.
  void flush(bool Complete) {
    if (!enabled() || Flushed)
      return;
    Flushed = true;
    json::Writer W;
    W.beginObject();
    W.key("bench").value(Bench);
    W.key("schema_version").value(static_cast<uint64_t>(1));
    W.key("complete").value(Complete);
    W.key("records").beginArray();
    for (const Record &R : Records) {
      W.beginObject();
      W.key("workload").value(R.Workload);
      for (const auto &[Key, Rendered] : R.Fields)
        W.key(Key).raw(Rendered);
      W.endObject();
    }
    W.endArray();
    W.key("stats").raw(StatsRegistry::instance().toJSON());
    W.key("metrics").raw(MetricsRegistry::instance().toJSON());
    W.key("timings").raw(TimerRegistry::instance().toJSON());
    W.endObject();
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "%s: cannot write '%s'\n", Bench.c_str(),
                   Path.c_str());
      return;
    }
    Out << W.str() << '\n';
  }

private:
  std::string Bench;
  std::string Path;
  std::deque<Record> Records;
  bool Flushed = false;
};

/// Reports an error and exits, flushing the active JsonReport first so a
/// crashing run leaves a (partial, complete=false) machine-readable
/// trace instead of an empty file.
[[noreturn]] inline void fatal(const char *Fmt, ...) {
  std::va_list Ap;
  va_start(Ap, Fmt);
  std::vfprintf(stderr, Fmt, Ap);
  va_end(Ap);
  std::fputc('\n', stderr);
  if (JsonReport *R = activeReport())
    R->flush(/*Complete=*/false);
  std::exit(1);
}

/// Compiles (fatal on error -- workloads are pinned by tests) and applies
/// the configured pipeline. Leaves the compilation for callers that need
/// the transformed IR (limit studies).
inline Compilation prepare(const WorkloadInfo &W, const RunConfig &Config,
                           RunOutcome &Out) {
  DiagnosticEngine Diags;
  Compilation C = compileSource(W.Source, Diags);
  if (!C.ok())
    fatal("workload %s failed to compile:\n%s", W.Name,
          Diags.str(W.Name).c_str());
  Out.SourceLines = C.ast().SourceLines;
  // One manager for the whole preparation: devirt, inlining and RLE share
  // the context, oracle, call graph and mod-ref summaries it caches.
  AnalysisManager AM(C.ast(), C.types(),
                     {.Level = Config.Level, .OpenWorld = Config.OpenWorld,
                      .Degrading = false});
  AM.bind(C.IR);
  if (Config.DevirtAndInline) {
    Out.Resolved = resolveMethodCalls(C.IR, AM.context());
    if (Out.Resolved)
      AM.invalidateModuleAnalyses();
    Out.Inlined = inlineCalls(C.IR, AM);
  }
  if (Config.CopyProp)
    propagateCopies(C.IR);
  if (Config.ApplyRLE) {
    Out.RLE = runRLE(C.IR, AM);
    Out.Oracle = AM.instrumented()->stats();
  }
  return C;
}

/// Executes the prepared program with the timing simulator attached.
inline void execute(Compilation &C, RunOutcome &Out,
                    ExecMonitor *Extra = nullptr) {
  TimingSimulator Timing;
  VM Machine(C.IR);
  Machine.setOpLimit(2'000'000'000);
  Machine.addMonitor(&Timing);
  if (Extra)
    Machine.addMonitor(Extra);
  if (!Machine.runInit())
    fatal("init trapped: %s", Machine.trapMessage().c_str());
  auto R = Machine.callFunction("Main");
  if (!R)
    fatal("Main trapped: %s", Machine.trapMessage().c_str());
  Out.Checksum = *R;
  Out.Stats = Machine.stats();
  Out.Cycles = Timing.cycles(Machine.stats());
}

inline RunOutcome run(const WorkloadInfo &W, const RunConfig &Config,
                      ExecMonitor *Extra = nullptr) {
  RunOutcome Out;
  Compilation C = prepare(W, Config, Out);
  execute(C, Out, Extra);
  return Out;
}

/// Part/Whole as a plain ratio; 0 when the denominator is 0.
inline double ratioOf(double Part, double Whole) {
  return Whole != 0.0 ? Part / Whole : 0.0;
}

/// Part/Whole as a percentage; 0 when the denominator is 0.
inline double percentOf(double Part, double Whole) {
  return 100.0 * ratioOf(Part, Whole);
}
inline double percentOf(uint64_t Part, uint64_t Whole) {
  return percentOf(static_cast<double>(Part), static_cast<double>(Whole));
}

} // namespace tbaa::bench

#endif // TBAA_BENCH_BENCHCOMMON_H
