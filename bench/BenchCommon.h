//===- BenchCommon.h - Shared harness for the paper's experiments -*- C++ -*-===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One configuration-driven runner used by every table/figure binary:
/// compile a workload, optionally apply method resolution + inlining,
/// copy propagation and RLE under a chosen alias analysis, execute on the
/// VM with the cache/timing simulator attached, and report counters.
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_BENCH_BENCHCOMMON_H
#define TBAA_BENCH_BENCHCOMMON_H

#include "core/AliasCensus.h"
#include "core/AliasOracle.h"
#include "core/TBAAContext.h"
#include "exec/VM.h"
#include "ir/Pipeline.h"
#include "opt/CopyProp.h"
#include "opt/Devirt.h"
#include "opt/Inline.h"
#include "opt/RLE.h"
#include "sim/CacheSim.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace tbaa::bench {

struct RunConfig {
  bool ApplyRLE = false;
  AliasLevel Level = AliasLevel::SMFieldTypeRefs;
  bool OpenWorld = false;
  bool DevirtAndInline = false;
  bool CopyProp = false;
};

struct RunOutcome {
  int64_t Checksum = 0;
  unsigned SourceLines = 0;
  ExecStats Stats;
  uint64_t Cycles = 0;
  RLEStats RLE;
  unsigned Resolved = 0;
  unsigned Inlined = 0;
};

/// Compiles (exits on error -- workloads are pinned by tests) and applies
/// the configured pipeline. Leaves the compilation for callers that need
/// the transformed IR (limit studies).
inline Compilation prepare(const WorkloadInfo &W, const RunConfig &Config,
                           RunOutcome &Out) {
  DiagnosticEngine Diags;
  Compilation C = compileSource(W.Source, Diags);
  if (!C.ok()) {
    std::fprintf(stderr, "workload %s failed to compile:\n%s\n", W.Name,
                 Diags.str().c_str());
    std::exit(1);
  }
  Out.SourceLines = C.ast().SourceLines;
  TBAAContext Ctx(C.ast(), C.types(), {.OpenWorld = Config.OpenWorld});
  if (Config.DevirtAndInline) {
    Out.Resolved = resolveMethodCalls(C.IR, Ctx);
    Out.Inlined = inlineCalls(C.IR);
  }
  if (Config.CopyProp)
    propagateCopies(C.IR);
  if (Config.ApplyRLE) {
    auto Oracle = makeAliasOracle(Ctx, Config.Level);
    Out.RLE = runRLE(C.IR, *Oracle);
  }
  return C;
}

/// Executes the prepared program with the timing simulator attached.
inline void execute(Compilation &C, RunOutcome &Out,
                    ExecMonitor *Extra = nullptr) {
  TimingSimulator Timing;
  VM Machine(C.IR);
  Machine.setOpLimit(2'000'000'000);
  Machine.addMonitor(&Timing);
  if (Extra)
    Machine.addMonitor(Extra);
  if (!Machine.runInit()) {
    std::fprintf(stderr, "init trapped: %s\n",
                 Machine.trapMessage().c_str());
    std::exit(1);
  }
  auto R = Machine.callFunction("Main");
  if (!R) {
    std::fprintf(stderr, "Main trapped: %s\n",
                 Machine.trapMessage().c_str());
    std::exit(1);
  }
  Out.Checksum = *R;
  Out.Stats = Machine.stats();
  Out.Cycles = Timing.cycles(Machine.stats());
}

inline RunOutcome run(const WorkloadInfo &W, const RunConfig &Config,
                      ExecMonitor *Extra = nullptr) {
  RunOutcome Out;
  Compilation C = prepare(W, Config, Out);
  execute(C, Out, Extra);
  return Out;
}

inline double percentOf(uint64_t Part, uint64_t Whole) {
  return Whole ? 100.0 * static_cast<double>(Part) /
                     static_cast<double>(Whole)
               : 0.0;
}

} // namespace tbaa::bench

#endif // TBAA_BENCH_BENCHCOMMON_H
