//===- bench_scaling.cpp - Section 2.5: O(n) analysis complexity ----------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Validates the Section 2.5 complexity claim with google-benchmark: the
// cost of building TBAA (one linear pass merging type sets at pointer
// assignments) scales linearly in program size, while the alias-pair
// census -- a client -- is O(e^2) in the number of memory references.
//
//===----------------------------------------------------------------------===//

#include "core/AliasCensus.h"
#include "core/AliasOracle.h"
#include "core/TBAAContext.h"
#include "ir/Pipeline.h"
#include "workloads/Generator.h"

#include <benchmark/benchmark.h>

using namespace tbaa;

namespace {

/// Compiles a generated program of the requested size once per size.
const Compilation &compiled(unsigned Budget) {
  static std::map<unsigned, Compilation> Cache;
  auto It = Cache.find(Budget);
  if (It == Cache.end()) {
    GeneratorOptions Opts;
    Opts.Seed = 42;
    Opts.StatementBudget = Budget;
    Opts.NumProcs = 1 + Budget / 60;
    DiagnosticEngine Diags;
    Compilation C = compileSource(generateProgram(Opts), Diags);
    if (!C.ok()) {
      std::fprintf(stderr, "generator produced a bad program:\n%s\n",
                   Diags.str().c_str());
      std::exit(1);
    }
    It = Cache.emplace(Budget, std::move(C)).first;
  }
  return It->second;
}

void BM_TBAAConstruction(benchmark::State &State) {
  const Compilation &C = compiled(static_cast<unsigned>(State.range(0)));
  size_t Instrs = 0;
  for (const IRFunction &F : C.IR.Functions)
    Instrs += F.instrCount();
  for (auto _ : State) {
    TBAAContext Ctx(C.ast(), C.types(), {});
    benchmark::DoNotOptimize(Ctx.mergeCount());
  }
  State.SetComplexityN(static_cast<int64_t>(Instrs));
  State.counters["instrs"] = static_cast<double>(Instrs);
}

void BM_AliasQuery(benchmark::State &State) {
  const Compilation &C = compiled(240);
  TBAAContext Ctx(C.ast(), C.types(), {});
  auto Oracle = makeAliasOracle(Ctx, AliasLevel::SMFieldTypeRefs);
  // Gather two paths to query.
  std::vector<MemPath> Paths;
  for (const IRFunction &F : C.IR.Functions)
    for (const BasicBlock &B : F.Blocks)
      for (const Instr &I : B.Instrs)
        if (I.isMemAccess())
          Paths.push_back(I.Path);
  size_t I = 0;
  for (auto _ : State) {
    const MemPath &A = Paths[I % Paths.size()];
    const MemPath &B = Paths[(I * 7 + 3) % Paths.size()];
    benchmark::DoNotOptimize(Oracle->mayAlias(A, B));
    ++I;
  }
}

void BM_CensusQuadratic(benchmark::State &State) {
  const Compilation &C = compiled(static_cast<unsigned>(State.range(0)));
  TBAAContext Ctx(C.ast(), C.types(), {});
  auto Oracle = makeAliasOracle(Ctx, AliasLevel::SMFieldTypeRefs);
  uint64_t Refs = 0;
  for (auto _ : State) {
    CensusResult R = countAliasPairs(C.IR, *Oracle);
    Refs = R.References;
    benchmark::DoNotOptimize(R.GlobalPairs);
  }
  State.SetComplexityN(static_cast<int64_t>(Refs));
}

} // namespace

BENCHMARK(BM_TBAAConstruction)
    ->Arg(60)
    ->Arg(120)
    ->Arg(240)
    ->Arg(480)
    ->Arg(960)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_AliasQuery);
BENCHMARK(BM_CensusQuadratic)
    ->Arg(60)
    ->Arg(120)
    ->Arg(240)
    ->Arg(480)
    ->Complexity(benchmark::oNSquared);

BENCHMARK_MAIN();
