//===- bench_pipeline.cpp - What analysis caching buys the pipeline -------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Measures the AnalysisManager's effect on full-pipeline compile time:
// every workload is optimized twice with the identical pass sequence
// (devirt, inline, rle, copyprop, rle#2, pre), once in the pre-manager
// arrangement -- each pass entry point building its own supporting
// analyses, reproduced here through the legacy single-use wrappers --
// and once with every pass drawing from one shared manager. Both
// arrangements must produce the same Main() checksum; the report carries
// the best-of-N wall-clock and the time spent constructing analyses
// (dominators + loops + call graph + mod-ref, from the timing tree) per
// arrangement, plus the analysis.* cache counters of the cached run
// (schema checked by tools/check_stats_json.py via the standard `--json`
// path).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "opt/PassPipeline.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "workloads/Generator.h"

#include <chrono>
#include <cstring>
#include <map>
#include <vector>

using namespace tbaa;
using namespace tbaa::bench;

namespace {

constexpr int Reps = 5;

std::map<std::string, uint64_t> analysisCounters() {
  std::map<std::string, uint64_t> Out;
  for (const StatSnapshot &S : StatsRegistry::instance().snapshot())
    if (S.Group == "analysis")
      Out[S.Name] = S.Value;
  return Out;
}

uint64_t delta(const std::map<std::string, uint64_t> &Before,
               const std::map<std::string, uint64_t> &After,
               const char *K1, const char *K2, const char *K3, const char *K4) {
  uint64_t D = 0;
  for (const char *K : {K1, K2, K3, K4})
    D += After.at(K) - Before.at(K);
  return D;
}

/// Seconds spent under the analysis-construction timer scopes, summed
/// over the whole tree (the scopes never nest within each other).
double analysisSecondsOf(const TimerRegistry::Node &N) {
  double S = 0;
  if (N.Name == "dominators" || N.Name == "loops" || N.Name == "callgraph" ||
      N.Name == "modref")
    S += N.Seconds;
  for (const auto &C : N.Children)
    S += analysisSecondsOf(*C);
  return S;
}

Compilation compileWorkload(const WorkloadInfo &W) {
  DiagnosticEngine Diags;
  Compilation C = compileSource(W.Source, Diags);
  if (!C.ok())
    fatal("workload %s failed to compile:\n%s", W.Name,
          Diags.str(W.Name).c_str());
  return C;
}

/// The pre-manager arrangement: the same pass sequence, but every entry
/// point builds its own dominators, loops, call graph and mod-ref
/// summaries (the legacy wrappers run with a private single-use manager).
void optimizeUncached(Compilation &C) {
  TBAAContext Ctx(C.ast(), C.types(), {});
  auto Oracle = makeInstrumentedOracle(Ctx, AliasLevel::SMFieldTypeRefs);
  resolveMethodCalls(C.IR, Ctx);
  inlineCalls(C.IR);
  runRLE(C.IR, *Oracle);
  propagateCopies(C.IR);
  runRLE(C.IR, *Oracle);
  runLoadPRE(C.IR, *Oracle);
}

/// The shared-manager arrangement: the real pipeline.
void optimizeCached(Compilation &C) {
  AnalysisManager AM(C.ast(), C.types(), {.Degrading = false});
  OptPipeline P(AM, PipelineOptions{});
  if (PipelineFailure F = P.run(C.IR); F.failed())
    fatal("pipeline failed after pass '%s':\n%s", F.Pass.c_str(),
          F.Error.c_str());
}

/// The cached pipeline with the two-level parallel schedule at \p Threads
/// workers (0 = the sequential loop).
void optimizeParallel(Compilation &C, unsigned Threads) {
  AnalysisManager AM(C.ast(), C.types(), {.Degrading = false});
  PipelineOptions PO;
  PO.ParallelThreads = Threads;
  OptPipeline P(AM, PO);
  if (PipelineFailure F = P.run(C.IR); F.failed())
    fatal("parallel pipeline (%u threads) failed after pass '%s':\n%s",
          Threads, F.Pass.c_str(), F.Error.c_str());
}

/// Times Reps runs of \p Optimize, each over a fresh compile (the
/// pipeline mutates the IR). Returns the best wall-clock in microseconds;
/// \p AnalysisUs gets the per-run average time spent constructing
/// analyses, read from the timing tree accumulated across the reps.
template <typename Fn>
uint64_t timeOptimize(const WorkloadInfo &W, Fn Optimize,
                      uint64_t &AnalysisUs) {
  TimerRegistry::instance().reset();
  uint64_t Best = ~0ull;
  for (int R = 0; R != Reps; ++R) {
    Compilation C = compileWorkload(W);
    auto T0 = std::chrono::steady_clock::now();
    Optimize(C);
    auto T1 = std::chrono::steady_clock::now();
    uint64_t Us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0)
            .count());
    Best = std::min(Best, Us);
  }
  AnalysisUs = static_cast<uint64_t>(
      analysisSecondsOf(TimerRegistry::instance().root()) / Reps * 1e6);
  return Best;
}

/// `--trace-overhead`: the recorder must be cheap enough to leave on for
/// whole batches, so gate the cached-pipeline wall clock with tracing on
/// against tracing off. Best-of-Reps per workload, aggregated, with an
/// absolute slack floor so sub-millisecond workloads don't turn timer
/// jitter into failures.
int runTraceOverheadGate() {
  constexpr double MaxOverhead = 0.05;
  constexpr uint64_t SlackUs = 500;

  TraceRecorder &TR = TraceRecorder::instance();
  uint64_t OffUs = 0, OnUs = 0;
  std::printf("Trace-recorder overhead: cached pipeline, best of %d runs\n\n",
              Reps);
  std::printf("%-14s %9s %9s\n", "Program", "trace-off", "trace-on");
  for (const WorkloadInfo &W : allWorkloads()) {
    if (W.Interactive)
      continue;
    // Interleave the arms so a transient load spike lands on both, not
    // just whichever arm happened to run second.
    uint64_t Best[2] = {~0ull, ~0ull};
    for (int R = 0; R != Reps; ++R) {
      for (int Traced = 0; Traced != 2; ++Traced) {
        TR.setEnabled(Traced != 0);
        TR.clear();
        Compilation C = compileWorkload(W);
        auto T0 = std::chrono::steady_clock::now();
        optimizeCached(C);
        auto T1 = std::chrono::steady_clock::now();
        Best[Traced] = std::min(
            Best[Traced],
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0)
                    .count()));
      }
    }
    TR.setEnabled(false);
    TR.clear();
    OffUs += Best[0];
    OnUs += Best[1];
    std::printf("%-14s %7lluus %7lluus\n", W.Name,
                static_cast<unsigned long long>(Best[0]),
                static_cast<unsigned long long>(Best[1]));
  }

  const uint64_t Limit =
      OffUs + std::max(static_cast<uint64_t>(OffUs * MaxOverhead), SlackUs);
  std::printf("\naggregate: %lluus off, %lluus on (limit %lluus)\n",
              static_cast<unsigned long long>(OffUs),
              static_cast<unsigned long long>(OnUs),
              static_cast<unsigned long long>(Limit));
  if (OnUs > Limit) {
    std::fprintf(stderr,
                 "bench_pipeline: tracing overhead %.1f%% exceeds %.0f%%\n",
                 percentOf(OnUs - OffUs, OffUs), 100 * MaxOverhead);
    return 1;
  }
  std::printf("tracing overhead within budget\n");
  return 0;
}

/// A named source for the parallel curve: the golden workloads plus
/// generated many-procedure programs that give the worker pool real
/// breadth (the bundled workloads have 10-40 functions; the generated
/// ones are where a 4-thread win is actually measurable).
struct CurveProgram {
  std::string Name;
  std::string Source;
  bool MultiFunction; ///< Counts toward the speedup assertion.
};

Compilation compileSourceOrDie(const CurveProgram &P) {
  DiagnosticEngine Diags;
  Compilation C = compileSource(P.Source, Diags);
  if (!C.ok())
    fatal("program %s failed to compile:\n%s", P.Name.c_str(),
          Diags.str(P.Name.c_str()).c_str());
  return C;
}

/// `--parallel-curve`: wall-clock of the cached pipeline at 1/2/4/N
/// worker threads against the sequential loop, every arm checked for
/// bit-identical IR and Main() checksum. Gates: the widest arm must not
/// be slower than one thread beyond a noise margin, and -- only on
/// machines that actually have >= 4 cores -- the generated
/// multi-function programs must reach 1.5x at 4 threads.
int runParallelCurve(int argc, char **argv) {
  JsonReport Report("bench_pipeline_parallel", argc, argv);
  constexpr double NoiseMargin = 0.30;
  constexpr uint64_t SlackUs = 2000;

  std::vector<unsigned> Threads = {1, 2, 4};
  unsigned HW = ThreadPool::defaultThreads();
  if (HW > 4)
    Threads.push_back(HW);

  std::vector<CurveProgram> Programs;
  for (const WorkloadInfo &W : allWorkloads())
    if (!W.Interactive)
      Programs.push_back({W.Name, W.Source, false});
  Programs.push_back(
      {"gen-16p", generateProgram({.Seed = 7, .StatementBudget = 400,
                                   .NumProcs = 16}),
       true});
  Programs.push_back(
      {"gen-32p", generateProgram({.Seed = 11, .StatementBudget = 800,
                                   .NumProcs = 32}),
       true});

  std::printf("Parallel pipeline scaling: best of %d runs per arm "
              "(identical IR + checksum enforced)\n\n",
              Reps);
  std::printf("%-14s %9s", "Program", "seq");
  for (unsigned T : Threads)
    std::printf("  %7ut", T);
  std::printf("\n");

  uint64_t SeqTotal = 0, MultiFn1t = 0, MultiFn4t = 0;
  std::vector<uint64_t> ArmTotal(Threads.size(), 0);
  for (const CurveProgram &P : Programs) {
    // Sequential reference: final IR text and checksum every arm must
    // reproduce exactly.
    std::string RefIR;
    int64_t RefChecksum = 0;
    {
      Compilation C = compileSourceOrDie(P);
      optimizeParallel(C, 0);
      RefIR = C.IR.dump();
      RunOutcome Out;
      execute(C, Out);
      RefChecksum = Out.Checksum;
    }

    // Interleaved arms: a load spike lands on every arm, not just one.
    uint64_t BestSeq = ~0ull;
    std::vector<uint64_t> Best(Threads.size(), ~0ull);
    for (int R = 0; R != Reps; ++R) {
      for (size_t A = 0; A != Threads.size() + 1; ++A) {
        unsigned T = A == 0 ? 0 : Threads[A - 1];
        Compilation C = compileSourceOrDie(P);
        auto T0 = std::chrono::steady_clock::now();
        optimizeParallel(C, T);
        auto T1 = std::chrono::steady_clock::now();
        uint64_t Us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0)
                .count());
        if (C.IR.dump() != RefIR)
          fatal("%s: %u-thread pipeline produced different IR",
                P.Name.c_str(), T);
        if (R == 0 && T != 0) {
          RunOutcome Out;
          execute(C, Out);
          if (Out.Checksum != RefChecksum)
            fatal("%s: %u-thread checksum %lld != sequential %lld",
                  P.Name.c_str(), T,
                  static_cast<long long>(Out.Checksum),
                  static_cast<long long>(RefChecksum));
        }
        if (A == 0)
          BestSeq = std::min(BestSeq, Us);
        else
          Best[A - 1] = std::min(Best[A - 1], Us);
      }
    }

    std::printf("%-14s %7lluus", P.Name.c_str(),
                static_cast<unsigned long long>(BestSeq));
    for (uint64_t B : Best)
      std::printf(" %7lluus", static_cast<unsigned long long>(B));
    std::printf("\n");

    SeqTotal += BestSeq;
    for (size_t A = 0; A != Best.size(); ++A)
      ArmTotal[A] += Best[A];
    if (P.MultiFunction) {
      MultiFn1t += Best[0];
      MultiFn4t += Best[2]; // Threads = {1, 2, 4, ...}
    }

    JsonReport::Record &Rec = Report.record(P.Name);
    Rec.set("seq_us", BestSeq);
    for (size_t A = 0; A != Threads.size(); ++A)
      Rec.set("t" + std::to_string(Threads[A]) + "_us", Best[A]);
    Rec.set("checksum", RefChecksum);
  }

  std::printf("\naggregate: %lluus seq",
              static_cast<unsigned long long>(SeqTotal));
  for (size_t A = 0; A != Threads.size(); ++A)
    std::printf(", %lluus @%ut",
                static_cast<unsigned long long>(ArmTotal[A]), Threads[A]);
  std::printf("\n");

  // Gate 1: the widest pool must not lose to one thread beyond noise.
  // On a 1-core container every arm degenerates to near-sequential, so
  // this is the only wall-clock claim that is portable.
  uint64_t Widest = ArmTotal.back();
  uint64_t Limit =
      ArmTotal[0] +
      std::max(static_cast<uint64_t>(ArmTotal[0] * NoiseMargin), SlackUs);
  if (Widest > Limit) {
    std::fprintf(stderr,
                 "bench_pipeline: %u-thread aggregate %lluus exceeds "
                 "1-thread %lluus beyond noise (limit %lluus)\n",
                 Threads.back(), static_cast<unsigned long long>(Widest),
                 static_cast<unsigned long long>(ArmTotal[0]),
                 static_cast<unsigned long long>(Limit));
    return 1;
  }
  // Gate 2: a real 4-core machine must show the win on the
  // multi-function programs.
  if (HW >= 4 && MultiFn4t != 0) {
    double Speedup = static_cast<double>(MultiFn1t) /
                     static_cast<double>(MultiFn4t);
    std::printf("multi-function speedup at 4 threads: %.2fx\n", Speedup);
    if (Speedup < 1.5) {
      std::fprintf(stderr,
                   "bench_pipeline: 4-thread speedup %.2fx below 1.5x on "
                   "multi-function programs\n",
                   Speedup);
      return 1;
    }
  }
  std::printf("parallel curve within bounds\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--trace-overhead"))
      return runTraceOverheadGate();
    if (!std::strcmp(argv[I], "--parallel-curve"))
      return runParallelCurve(argc, argv);
  }

  JsonReport Report("bench_pipeline", argc, argv);
  TimerRegistry::instance().setEnabled(true);
  std::printf("Analysis caching: full pipeline, per-pass analyses vs one "
              "shared manager\n");
  std::printf("(wall: best of %d runs; analy: avg time constructing "
              "dominators/loops/callgraph/modref;\n computed/hits are the "
              "cached run's analysis-cache counters)\n\n",
              Reps);
  std::printf("%-14s %9s %9s | %9s %9s %7s | %8s %6s\n", "Program",
              "wall-unc", "wall-cac", "analy-unc", "analy-cac", "saved",
              "computed", "hits");

  double SumSpeedup = 0;
  unsigned N = 0;
  for (const WorkloadInfo &W : allWorkloads()) {
    if (W.Interactive)
      continue;

    // Correctness first: both arrangements must agree with the
    // unoptimized program.
    RunOutcome Base, Unc, Cac;
    {
      Compilation C = compileWorkload(W);
      execute(C, Base);
    }
    {
      Compilation C = compileWorkload(W);
      optimizeUncached(C);
      execute(C, Unc);
    }
    auto Before = analysisCounters();
    {
      Compilation C = compileWorkload(W);
      optimizeCached(C);
      execute(C, Cac);
    }
    auto After = analysisCounters();
    if (Unc.Checksum != Base.Checksum || Cac.Checksum != Base.Checksum)
      fatal("%s: optimization changed the checksum", W.Name);
    // The parallel schedule must reproduce the sequential pipeline
    // bit-for-bit (also keeps the pipeline.parallel-* counters live for
    // the --json schema check).
    {
      RunOutcome Par;
      Compilation C = compileWorkload(W);
      optimizeParallel(C, 2);
      execute(C, Par);
      if (Par.Checksum != Base.Checksum)
        fatal("%s: parallel pipeline changed the checksum", W.Name);
    }

    uint64_t UncachedAnalysisUs = 0, CachedAnalysisUs = 0;
    uint64_t UncachedUs = timeOptimize(W, optimizeUncached,
                                       UncachedAnalysisUs);
    uint64_t CachedUs = timeOptimize(W, optimizeCached, CachedAnalysisUs);
    uint64_t Computed =
        delta(Before, After, "dominators-computed", "loops-computed",
              "callgraph-computed", "modref-computed");
    uint64_t Hits =
        delta(Before, After, "dominators-cache-hits", "loops-cache-hits",
              "callgraph-cache-hits", "modref-cache-hits");
    uint64_t Invalidated =
        delta(Before, After, "dominators-invalidated", "loops-invalidated",
              "callgraph-invalidated", "modref-invalidated");
    double Speedup = CachedAnalysisUs
                         ? static_cast<double>(UncachedAnalysisUs) /
                               static_cast<double>(CachedAnalysisUs)
                         : 1.0;
    SumSpeedup += Speedup;
    ++N;

    std::printf("%-14s %7lluus %7lluus | %7lluus %7lluus %6.2fx | %8llu "
                "%6llu\n",
                W.Name, static_cast<unsigned long long>(UncachedUs),
                static_cast<unsigned long long>(CachedUs),
                static_cast<unsigned long long>(UncachedAnalysisUs),
                static_cast<unsigned long long>(CachedAnalysisUs), Speedup,
                static_cast<unsigned long long>(Computed),
                static_cast<unsigned long long>(Hits));
    Report.record(W.Name)
        .set("uncached_us", UncachedUs)
        .set("cached_us", CachedUs)
        .set("uncached_analysis_us", UncachedAnalysisUs)
        .set("cached_analysis_us", CachedAnalysisUs)
        .set("analysis_speedup", Speedup)
        .set("analysis_computed", Computed)
        .set("analysis_cache_hits", Hits)
        .set("analysis_invalidated", Invalidated);
  }
  std::printf("\nAverage analysis-construction speedup: %.2fx over %u "
              "workloads\n",
              N ? SumSpeedup / N : 0.0, N);
  return 0;
}
