//===- ablation_rle.cpp - Breakup & Conditional ablations -----------------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// The two Figure 10 categories the paper attributes to its own optimizer
// rather than to TBAA come with fixes the paper names but does not build:
// copy propagation (for "Breakup") and partial redundancy elimination
// (for "Conditional", their stated future work). Both are implemented
// here, so this ablation measures how much of the remaining dynamic
// redundancy each one recovers on top of plain RLE.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "limit/LimitAnalysis.h"

using namespace tbaa;
using namespace tbaa::bench;

namespace {

struct AblationOutcome {
  uint64_t Cycles = 0;
  uint64_t HeapLoads = 0;
  uint64_t Redundant = 0;
  int64_t Checksum = 0;
};

AblationOutcome measure(const WorkloadInfo &W, bool CopyProp, bool PRE) {
  DiagnosticEngine Diags;
  Compilation C = compileSource(W.Source, Diags);
  if (!C.ok())
    fatal("workload %s failed to compile:\n%s", W.Name,
          Diags.str(W.Name).c_str());
  TBAAContext Ctx(C.ast(), C.types(), {});
  auto Oracle = makeAliasOracle(Ctx, AliasLevel::SMFieldTypeRefs);
  runRLE(C.IR, *Oracle);
  if (CopyProp) {
    // After RLE: rewrites can then only unify the survivors, and the
    // second CSE pass locks in the extra eliminations monotonically.
    propagateCopies(C.IR);
    runRLE(C.IR, *Oracle);
  }
  if (PRE)
    runLoadPRE(C.IR, *Oracle);

  RedundantLoadMonitor Monitor;
  TimingSimulator Timing;
  VM Machine(C.IR);
  Machine.setOpLimit(2'000'000'000);
  Machine.addMonitor(&Monitor);
  Machine.addMonitor(&Timing);
  if (!Machine.runInit())
    fatal("%s trapped: %s", W.Name, Machine.trapMessage().c_str());
  auto R = Machine.callFunction("Main");
  if (!R)
    fatal("%s trapped: %s", W.Name, Machine.trapMessage().c_str());
  AblationOutcome Out;
  Out.Cycles = Timing.cycles(Machine.stats());
  Out.HeapLoads = Machine.stats().HeapLoads;
  Out.Redundant = Monitor.redundantLoads();
  Out.Checksum = *R;
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  JsonReport Report("ablation_rle", argc, argv);
  std::printf("Ablation: copy propagation (Breakup) and load PRE "
              "(Conditional) on top of RLE\n");
  std::printf("(remaining dynamic redundant loads; lower is better)\n\n");
  std::printf("%-14s %12s %12s %12s %12s\n", "Program", "RLE", "+CopyProp",
              "+PRE", "+Both");
  for (const WorkloadInfo &W : allWorkloads()) {
    if (W.Interactive)
      continue; // the paper has no dynamic data for dom/postcard
    AblationOutcome Plain = measure(W, false, false);
    AblationOutcome CP = measure(W, true, false);
    AblationOutcome PRE = measure(W, false, true);
    AblationOutcome Both = measure(W, true, true);
    if (CP.Checksum != Plain.Checksum || PRE.Checksum != Plain.Checksum ||
        Both.Checksum != Plain.Checksum)
      fatal("%s: an ablation changed the checksum!", W.Name);
    std::printf("%-14s %12llu %12llu %12llu %12llu\n", W.Name,
                static_cast<unsigned long long>(Plain.Redundant),
                static_cast<unsigned long long>(CP.Redundant),
                static_cast<unsigned long long>(PRE.Redundant),
                static_cast<unsigned long long>(Both.Redundant));
    Report.record(W.Name)
        .set("redundant_rle", Plain.Redundant)
        .set("redundant_copyprop", CP.Redundant)
        .set("redundant_pre", PRE.Redundant)
        .set("redundant_both", Both.Redundant);
  }
  std::printf("\nReading: the paper predicted PRE would \"catch\" the "
              "Conditional category\nand copy propagation the Breakup "
              "category; the deltas above quantify both\npredictions on "
              "this suite.\n");
  return 0;
}
