//===- fig11_cumulative.cpp - Figure 11: cumulative optimizations ---------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Regenerates Figure 11 ("Cumulative Impact of Optimizations"): simulated
// execution time for RLE alone, method invocation resolution + inlining
// (Minv+Inlining), and both together, as percent of the base time.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace tbaa;
using namespace tbaa::bench;

int main(int argc, char **argv) {
  JsonReport Report("fig11_cumulative", argc, argv);
  std::printf("Figure 11: Cumulative Impact of Optimizations\n");
  std::printf("(percent of original running time; lower is better)\n\n");
  std::printf("%-14s %6s | %8s %10s %14s | %9s %8s\n", "Program", "Base",
              "RLE", "Minv+Inl", "RLE+Minv+Inl", "Resolved", "Inlined");
  double Sum[3] = {0, 0, 0};
  unsigned N = 0;
  for (const WorkloadInfo &W : allWorkloads()) {
    if (W.Interactive)
      continue; // the paper has no dynamic data for dom/postcard
    RunOutcome Base = run(W, RunConfig{});

    RunConfig RLEOnly;
    RLEOnly.ApplyRLE = true;
    RunOutcome R1 = run(W, RLEOnly);

    RunConfig MinvOnly;
    MinvOnly.DevirtAndInline = true;
    RunOutcome R2 = run(W, MinvOnly);

    RunConfig Both;
    Both.ApplyRLE = true;
    Both.DevirtAndInline = true;
    RunOutcome R3 = run(W, Both);

    if (R1.Checksum != Base.Checksum || R2.Checksum != Base.Checksum ||
        R3.Checksum != Base.Checksum)
      fatal("%s: optimization changed the checksum!", W.Name);
    double P1 = percentOf(R1.Cycles, Base.Cycles);
    double P2 = percentOf(R2.Cycles, Base.Cycles);
    double P3 = percentOf(R3.Cycles, Base.Cycles);
    Sum[0] += P1;
    Sum[1] += P2;
    Sum[2] += P3;
    ++N;
    std::printf("%-14s %6d | %7.1f%% %9.1f%% %13.1f%% | %9u %8u\n",
                W.Name, 100, P1, P2, P3, R3.Resolved, R3.Inlined);
    Report.record(W.Name)
        .set("percent_rle", P1)
        .set("percent_minv_inline", P2)
        .set("percent_combined", P3)
        .set("resolved", R3.Resolved)
        .set("inlined", R3.Inlined);
  }
  std::printf("\nAverage: RLE %.1f%%, Minv+Inlining %.1f%%, "
              "RLE+Minv+Inlining %.1f%%\n",
              Sum[0] / N, Sum[1] / N, Sum[2] / N);
  std::printf("Paper's shape: RLE ~96%%; Minv+Inlining 72-108%%; the "
              "combination tracks Minv+Inlining closely because inlining "
              "exposes mostly conditional (PRE-only) redundancy.\n");
  return 0;
}
