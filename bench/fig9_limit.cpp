//===- fig9_limit.cpp - Figure 9: TBAA versus the upper bound -------------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Regenerates Figure 9 ("Comparing TBAA to an Upper Bound"): the fraction
// of the original program's heap references that are dynamically
// redundant ("two consecutive loads of the same address load the same
// value in the same procedure activation"), before and after TBAA+RLE.
// Both fractions are relative to the ORIGINAL number of heap references,
// as in the paper.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "limit/LimitAnalysis.h"

using namespace tbaa;
using namespace tbaa::bench;

int main(int argc, char **argv) {
  JsonReport Report("fig9_limit", argc, argv);
  std::printf("Figure 9: Comparing TBAA to an Upper Bound\n");
  std::printf("(fraction of original heap references that are redundant "
              "loads)\n\n");
  std::printf("%-14s %22s %22s %10s\n", "Program", "Redundant originally",
              "Redundant after opts", "Removed");
  for (const WorkloadInfo &W : allWorkloads()) {
    if (W.Interactive)
      continue; // the paper has no dynamic data for dom/postcard
    RedundantLoadMonitor Before;
    RunOutcome Base;
    {
      Compilation C = prepare(W, RunConfig{}, Base);
      execute(C, Base, &Before);
    }
    RedundantLoadMonitor After;
    RunConfig Config;
    Config.ApplyRLE = true;
    Config.Level = AliasLevel::SMFieldTypeRefs;
    RunOutcome Opt;
    {
      Compilation C = prepare(W, Config, Opt);
      execute(C, Opt, &After);
    }
    double OrigHeap = static_cast<double>(Before.heapLoads());
    double FracBefore =
        ratioOf(static_cast<double>(Before.redundantLoads()), OrigHeap);
    double FracAfter =
        ratioOf(static_cast<double>(After.redundantLoads()), OrigHeap);
    double Removed =
        Before.redundantLoads()
            ? 100.0 -
                  percentOf(After.redundantLoads(), Before.redundantLoads())
            : 0.0;
    std::printf("%-14s %22.3f %22.3f %9.0f%%\n", W.Name, FracBefore,
                FracAfter, Removed);
    Report.record(W.Name)
        .set("redundant_fraction_before", FracBefore)
        .set("redundant_fraction_after", FracAfter)
        .set("removed_percent", Removed);
  }
  std::printf("\nPaper's shape: 0.05-0.56 originally; optimization removes"
              " 37-87%% of redundant loads; most programs end below "
              "0.05.\n");
  return 0;
}
