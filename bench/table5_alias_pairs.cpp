//===- table5_alias_pairs.cpp - Table 5: static alias pairs ---------------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Regenerates Table 5 ("Alias Pairs"): for each benchmark, the number of
// heap memory references and the local (same-procedure) and global
// (program-wide) may-alias pairs under TypeDecl, FieldTypeDecl and
// SMFieldTypeRefs. The paper's headline: TypeDecl is very imprecise;
// FieldTypeDecl removes most pairs; SMFieldTypeRefs adds a little on a
// couple of programs.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace tbaa;
using namespace tbaa::bench;

int main(int argc, char **argv) {
  JsonReport Report("table5_alias_pairs", argc, argv);
  std::printf("Table 5: Alias Pairs\n\n");
  std::printf("%-14s %6s | %9s %9s | %9s %9s | %9s %9s\n", "", "",
              "TypeDecl", "", "FieldTD", "", "SMFieldTR", "");
  std::printf("%-14s %6s | %9s %9s | %9s %9s | %9s %9s\n", "Program",
              "Refs", "L Alias", "G Alias", "L Alias", "G Alias",
              "L Alias", "G Alias");

  double AvgLocal[3] = {0, 0, 0}, AvgGlobal[3] = {0, 0, 0};
  unsigned N = 0;
  for (const WorkloadInfo &W : allWorkloads()) {
    DiagnosticEngine Diags;
    Compilation C = compileSource(W.Source, Diags);
    if (!C.ok())
      fatal("workload %s failed to compile:\n%s", W.Name,
            Diags.str(W.Name).c_str());
    TBAAContext Ctx(C.ast(), C.types(), {});
    // One interned-location table serves all three levels; each level
    // adds its equivalence-class partition to the same engine.
    AliasClassEngine Engine(C.IR);
    const AliasLevel Levels[3] = {AliasLevel::TypeDecl,
                                  AliasLevel::FieldTypeDecl,
                                  AliasLevel::SMFieldTypeRefs};
    CensusResult R[3];
    for (int L = 0; L != 3; ++L) {
      auto Oracle = makeAliasOracle(Ctx, Levels[L]);
      R[L] = countAliasPairs(C.IR, Engine, *Oracle);
      AvgLocal[L] += R[L].localPerReference();
      AvgGlobal[L] += R[L].globalPerReference();
    }
    ++N;
    std::printf("%-14s %6llu | %9llu %9llu | %9llu %9llu | %9llu %9llu\n",
                W.Name, static_cast<unsigned long long>(R[0].References),
                static_cast<unsigned long long>(R[0].LocalPairs),
                static_cast<unsigned long long>(R[0].GlobalPairs),
                static_cast<unsigned long long>(R[1].LocalPairs),
                static_cast<unsigned long long>(R[1].GlobalPairs),
                static_cast<unsigned long long>(R[2].LocalPairs),
                static_cast<unsigned long long>(R[2].GlobalPairs));
    Report.record(W.Name)
        .set("references", R[0].References)
        .set("local_typedecl", R[0].LocalPairs)
        .set("global_typedecl", R[0].GlobalPairs)
        .set("local_fieldtypedecl", R[1].LocalPairs)
        .set("global_fieldtypedecl", R[1].GlobalPairs)
        .set("local_smfieldtyperefs", R[2].LocalPairs)
        .set("global_smfieldtyperefs", R[2].GlobalPairs);
  }
  std::printf("\nAverage other references each heap reference may alias "
              "(2*pairs/refs):\n");
  std::printf("  local : TypeDecl %.1f, FieldTypeDecl %.1f, "
              "SMFieldTypeRefs %.1f\n",
              AvgLocal[0] / N, AvgLocal[1] / N, AvgLocal[2] / N);
  std::printf("  global: TypeDecl %.1f, FieldTypeDecl %.1f, "
              "SMFieldTypeRefs %.1f\n",
              AvgGlobal[0] / N, AvgGlobal[1] / N, AvgGlobal[2] / N);
  std::printf("\nPaper's shape: local 4.7 / 3.4 / 3.4, global 54.1 / 12.7 "
              "/ 12.7 per reference; interprocedural aliasing far worse "
              "than intraprocedural.\n");
  return 0;
}
