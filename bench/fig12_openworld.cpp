//===- fig12_openworld.cpp - Figure 12: open vs closed world --------------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Regenerates Figure 12 ("Open and Closed World Assumptions"): simulated
// execution time of RLE under the closed-world TBAA versus the Section 4
// open-world variant (AddressTaken widened by the pass-by-reference
// formal rule; merges widened to every reconstructible subtype pair).
// The paper's result: the open world costs essentially nothing.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace tbaa;
using namespace tbaa::bench;

int main(int argc, char **argv) {
  JsonReport Report("fig12_openworld", argc, argv);
  std::printf("Figure 12: Open and Closed World Assumptions\n");
  std::printf("(percent of original running time under RLE)\n\n");
  std::printf("%-14s %6s | %10s %10s | %12s %12s\n", "Program", "Base",
              "RLE", "RLE Open", "Loads(cl)", "Loads(op)");
  double SumClosed = 0, SumOpen = 0;
  unsigned N = 0;
  for (const WorkloadInfo &W : allWorkloads()) {
    if (W.Interactive)
      continue; // the paper has no dynamic data for dom/postcard
    RunOutcome Base = run(W, RunConfig{});

    RunConfig Closed;
    Closed.ApplyRLE = true;
    RunOutcome RC = run(W, Closed);

    RunConfig Open;
    Open.ApplyRLE = true;
    Open.OpenWorld = true;
    RunOutcome RO = run(W, Open);

    if (RC.Checksum != Base.Checksum || RO.Checksum != Base.Checksum)
      fatal("%s: RLE changed the checksum!", W.Name);
    double PC = percentOf(RC.Cycles, Base.Cycles);
    double PO = percentOf(RO.Cycles, Base.Cycles);
    SumClosed += PC;
    SumOpen += PO;
    ++N;
    std::printf("%-14s %6d | %9.1f%% %9.1f%% | %12u %12u\n", W.Name, 100,
                PC, PO, RC.RLE.total(), RO.RLE.total());
    Report.record(W.Name)
        .set("percent_closed", PC)
        .set("percent_open", PO)
        .set("loads_closed", RC.RLE.total())
        .set("loads_open", RO.RLE.total());
  }
  std::printf("\nAverage: closed %.1f%%, open %.1f%%\n", SumClosed / N,
              SumOpen / N);
  std::printf("Paper's shape: open-world bars identical to closed-world "
              "bars on every program.\n");
  return 0;
}
