//===- table4_benchmarks.cpp - Table 4: benchmark descriptions ------------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Regenerates Table 4 ("Description of Benchmark Programs"): non-comment
// non-blank source lines, executed instructions (VM micro-operations),
// percent heap loads and percent other (stack/global) loads, for the
// original programs without the paper's optimizations.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace tbaa;
using namespace tbaa::bench;

int main(int argc, char **argv) {
  JsonReport Report("table4_benchmarks", argc, argv);
  std::printf("Table 4: Description of Benchmark Programs\n");
  std::printf("(unoptimized; instructions are VM micro-operations)\n\n");
  std::printf("%-14s %7s %14s %12s %13s  %s\n", "Name", "Lines",
              "Instructions", "% Heap loads", "% Other loads",
              "Description");
  for (const WorkloadInfo &W : allWorkloads()) {
    if (W.Interactive) {
      // Like the paper: interactive programs get no dynamic columns.
      RunOutcome Out;
      Compilation C = prepare(W, RunConfig{}, Out);
      (void)C;
      std::printf("%-14s %7u %14s %12s %13s  %s\n", W.Name,
                  Out.SourceLines, "-", "-", "-", W.Description);
      Report.record(W.Name).set("lines", Out.SourceLines);
      continue;
    }
    RunOutcome Out = run(W, RunConfig{});
    std::printf("%-14s %7u %14llu %12.1f %13.1f  %s\n", W.Name,
                Out.SourceLines,
                static_cast<unsigned long long>(Out.Stats.Ops),
                Out.Stats.heapLoadPercent(), Out.Stats.otherLoadPercent(),
                W.Description);
    Report.record(W.Name)
        .set("lines", Out.SourceLines)
        .set("instructions", Out.Stats.Ops)
        .set("heap_load_percent", Out.Stats.heapLoadPercent())
        .set("other_load_percent", Out.Stats.otherLoadPercent());
  }
  std::printf("\nPaper's shape: thousands of lines, millions of "
              "instructions, heap loads ~8-27%%, other loads ~9-28%%.\n");
  return 0;
}
