//===- table6_rle_static.cpp - Table 6: loads removed statically ----------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Regenerates Table 6 ("Number of Redundant Loads Removed Statically"):
// how many loads RLE removes under each TBAA variant. The paper's shape:
// counts grow clearly from TypeDecl to FieldTypeDecl and are flat from
// FieldTypeDecl to SMFieldTypeRefs.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace tbaa;
using namespace tbaa::bench;

int main(int argc, char **argv) {
  JsonReport Report("table6_rle_static", argc, argv);
  std::printf("Table 6: Number of Redundant Loads Removed Statically\n");
  std::printf("(hoisted to preheaders + replaced by register references)\n\n");
  std::printf("%-14s | %9s | %13s | %15s\n", "Program", "TypeDecl",
              "FieldTypeDecl", "SMFieldTypeRefs");
  for (const WorkloadInfo &W : allWorkloads()) {
    if (W.Interactive)
      continue; // the paper has no dynamic data for dom/postcard
    unsigned Totals[3];
    const AliasLevel Levels[3] = {AliasLevel::TypeDecl,
                                  AliasLevel::FieldTypeDecl,
                                  AliasLevel::SMFieldTypeRefs};
    for (int L = 0; L != 3; ++L) {
      RunConfig Config;
      Config.ApplyRLE = true;
      Config.Level = Levels[L];
      RunOutcome Out;
      Compilation C = prepare(W, Config, Out);
      (void)C;
      Totals[L] = Out.RLE.total();
    }
    std::printf("%-14s | %9u | %13u | %15u\n", W.Name, Totals[0],
                Totals[1], Totals[2]);
    Report.record(W.Name)
        .set("rle_removed_typedecl", Totals[0])
        .set("rle_removed_fieldtypedecl", Totals[1])
        .set("rle_removed_smfieldtyperefs", Totals[2]);
  }
  std::printf("\nPaper's shape: FieldTypeDecl > TypeDecl on most programs;"
              " SMFieldTypeRefs == FieldTypeDecl everywhere.\n");
  return 0;
}
