//===- m3batch.cpp - Fault-isolated batch compilation driver --------------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Compiles a batch of M3L workloads with one sandboxed worker per job
// (src/service/): rlimit CPU/memory caps, crash-translating signal
// handlers, a monotonic watchdog for hangs, and a retry ladder that
// steps failed jobs down the precision ladder (full TBAA -> TypeDecl
// oracle -> -O0) with exponential backoff. Every attempt is appended to
// a JSONL journal so an interrupted batch resumes where it stopped, and
// crashes produce m3fuzz-compatible triage bundles.
//
//   m3batch [--jobs=a,b,c] [--gen=N] [--config=FILE] [--parallel=N]
//           [--timeout-ms=N] [--cpu-seconds=N] [--memory-mb=N]
//           [--retries=N] [--backoff-ms=N] [--journal=FILE] [--resume]
//           [--journal-fsync] [--check-journal] [--faults=SPEC]
//           [--crash-dir=DIR] [--trace=FILE] [--level=L] [--pipeline]
//           [--pre] [--parallel-opt[=N]] [--verify-analyses] [--strict]
//           [--verbose] [--stats]
//
// Jobs: bundled workload names, .m3l file paths, `gen:SEED` generated
// programs, or the planted fault injectors `@crash` (SIGSEGV), `@hang`
// (infinite loop) and `@budget` (compiles under a starved analysis
// budget) used by the robustness tests. Default: every non-interactive
// bundled workload. Workers follow the m3lc exit-code contract
// (0 ok, 1 diagnostics/trap, 2 usage, 3 internal).
//
// Exit codes: 0 the batch completed (per-job outcomes are in the
// journal/summary, failures included); 1 --strict and some job did not
// end ok; 2 usage error; 3 driver error (journal unusable).
//
//===----------------------------------------------------------------------===//

#include "CompileJobs.h"

#include "service/Batch.h"
#include "service/Journal.h"
#include "service/Sandbox.h"
#include "support/FaultInjector.h"
#include "core/PartitionCache.h"
#include "support/Metrics.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace tbaa;

namespace {

struct Options {
  BatchConfig Cfg;
  std::vector<std::string> JobNames;
  uint64_t Gen = 0;
  std::string JournalPath;
  bool Resume = false;
  bool JournalFsync = false;
  bool CheckJournal = false;
  std::string Faults;
  std::string CrashDir;
  std::string TracePath;
  bool Pipeline = false;
  bool PRE = false;
  bool VerifyAnalyses = false;
  unsigned ParallelOpt = 0; ///< Worker threads inside each compile job.
  bool Strict = false;
  bool Verbose = false;
  bool Stats = false;
  PartitionCacheMode PartitionCache = PartitionCacheMode::Off;
  uint64_t PartitionCacheMB = 0; ///< 0 = default cap
};

int usage() {
  std::fprintf(
      stderr,
      "usage: m3batch [--jobs=a,b,c] [--gen=N] [--config=FILE]\n"
      "               [--parallel=N] [--timeout-ms=N] [--cpu-seconds=N]\n"
      "               [--memory-mb=N] [--retries=N] [--backoff-ms=N]\n"
      "               [--journal=FILE] [--resume] [--journal-fsync]\n"
      "               [--check-journal] [--faults=SPEC] [--crash-dir=DIR]\n"
      "               [--trace=FILE]\n"
      "               [--level=typedecl|fieldtypedecl|smfieldtyperefs]\n"
      "               [--pipeline] [--pre] [--parallel-opt[=N]]\n"
      "               [--partition-cache=off|proc|shared]\n"
      "               [--partition-cache-mb=N]\n"
      "               [--verify-analyses] [--strict] [--verbose] [--stats]\n"
      "jobs: workload names, .m3l files, gen:SEED[:sN], @crash, @hang, "
      "@budget\n"
      "--partition-cache=shared publishes alias partitions into a "
      "parent-owned\n"
      "read-only segment reused across forked workers; 'proc' keeps an "
      "in-process\n"
      "LRU. Jobs with a finite --analysis-budget bypass the cache.\n"
      "exit codes: 0 batch completed, 1 --strict failure, 2 usage, "
      "3 driver error\n");
  return 2;
}

/// Resolves one --jobs token into a BatchJob. Returns false on an
/// unresolvable name.
bool makeJob(const std::string &Name, const Options &Opts, BatchJob &Out) {
  Out.Id = Name;
  const BatchConfig &Cfg = Opts.Cfg;
  jobs::CompileFlags Flags{Opts.Pipeline, Opts.PRE, Opts.VerifyAnalyses,
                           Opts.ParallelOpt};

  if (Name == "@crash") {
    Out.Make = [](DegradeLevel) {
      return [](int) -> int {
#if TBAA_ASAN_BUILD
        // ASan's own SEGV machinery would intercept a null store and
        // exit before our crash handler saw any signal; a trap (SIGILL)
        // still reaches the handler in instrumented builds.
        __builtin_trap();
#else
        volatile int *P = nullptr;
        *P = 1; // the planted SIGSEGV worker
        return 0;
#endif
      };
    };
    return true;
  }
  if (Name == "@hang") {
    Out.Make = [](DegradeLevel) {
      return [](int) -> int {
        for (;;) // the planted hung worker; only the watchdog ends it
          ::pause();
      };
    };
    return true;
  }
  if (Name == "@budget") {
    // A worker compiling under a starved analysis budget: exercises the
    // *in-worker* degradation ladder (PR 2) inside the batch sandbox --
    // it must still exit 0.
    const WorkloadInfo *W = findWorkload("format");
    Out.Source = W ? W->Source : "";
    BatchConfig Starved = Cfg;
    Starved.AnalysisBudget = 16;
    Out.Make = [Source = Out.Source, Starved, Flags](DegradeLevel D) {
      return [=](int Fd) {
        return jobs::runCompileJob(Source, Starved, Flags, D, Fd);
      };
    };
    return true;
  }

  if (!jobs::resolveJobSource(Name, Out.Source))
    return false;

  Out.Make = [Source = Out.Source, Cfg, Flags](DegradeLevel D) {
    return [=](int Fd) {
      return jobs::runCompileJob(Source, Cfg, Flags, D, Fd);
    };
  };
  return true;
}

} // namespace

int main(int argc, char **argv) {
  Options Opts;
  // The config file applies first so every flag can override it.
  for (int I = 1; I < argc; ++I)
    if (std::strncmp(argv[I], "--config=", 9) == 0) {
      std::string Error;
      if (!BatchConfig::loadFile(argv[I] + 9, Opts.Cfg, Error)) {
        std::fprintf(stderr, "m3batch: %s\n", Error.c_str());
        return 2;
      }
    }

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto numArg = [&](const char *Prefix, uint64_t &Slot) {
      size_t N = std::strlen(Prefix);
      if (A.rfind(Prefix, 0) != 0)
        return false;
      char *End = nullptr;
      Slot = std::strtoull(A.c_str() + N, &End, 10);
      return End && !*End;
    };
    uint64_t Tmp = 0;
    if (A.rfind("--config=", 0) == 0)
      ; // applied above
    else if (A.rfind("--jobs=", 0) == 0)
      Opts.JobNames = jobs::splitCommas(A.substr(7));
    else if (numArg("--gen=", Opts.Gen) ||
             numArg("--timeout-ms=", Opts.Cfg.TimeoutMs) ||
             numArg("--cpu-seconds=", Opts.Cfg.CpuSeconds) ||
             numArg("--memory-mb=", Opts.Cfg.MemoryMB) ||
             numArg("--backoff-ms=", Opts.Cfg.BackoffMs) ||
             numArg("--analysis-budget=", Opts.Cfg.AnalysisBudget))
      ;
    else if (numArg("--parallel=", Tmp) && Tmp)
      Opts.Cfg.Parallel = static_cast<unsigned>(Tmp);
    else if (numArg("--retries=", Tmp) && Tmp)
      Opts.Cfg.Retries = static_cast<unsigned>(Tmp);
    else if (numArg("--max-errors=", Tmp))
      Opts.Cfg.MaxErrors = static_cast<unsigned>(Tmp);
    else if (A.rfind("--journal=", 0) == 0 && A.size() > 10)
      Opts.JournalPath = A.substr(10);
    else if (A.rfind("--crash-dir=", 0) == 0 && A.size() > 12)
      Opts.CrashDir = A.substr(12);
    else if (A.rfind("--trace=", 0) == 0 && A.size() > 8)
      Opts.TracePath = A.substr(8);
    else if (A.rfind("--level=", 0) == 0) {
      std::string L = A.substr(8);
      if (L != "typedecl" && L != "fieldtypedecl" && L != "smfieldtyperefs")
        return usage();
      Opts.Cfg.Level = L;
    } else if (A.rfind("--faults=", 0) == 0)
      Opts.Faults = A.substr(9);
    else if (A == "--journal-fsync")
      Opts.JournalFsync = true;
    else if (A == "--check-journal")
      Opts.CheckJournal = true;
    else if (A == "--resume")
      Opts.Resume = true;
    else if (A == "--pipeline")
      Opts.Pipeline = true;
    else if (A == "--pre")
      Opts.PRE = true;
    else if (A == "--verify-analyses")
      Opts.VerifyAnalyses = true;
    else if (A == "--parallel-opt")
      Opts.ParallelOpt = ThreadPool::defaultThreads();
    else if (A.rfind("--parallel-opt=", 0) == 0) {
      char *End = nullptr;
      unsigned long N = std::strtoul(A.c_str() + 15, &End, 10);
      if (!End || *End || N == 0)
        return usage();
      Opts.ParallelOpt = static_cast<unsigned>(N);
    } else if (A.rfind("--partition-cache=", 0) == 0) {
      if (!parsePartitionCacheMode(A.substr(18), Opts.PartitionCache))
        return usage();
    } else if (numArg("--partition-cache-mb=", Opts.PartitionCacheMB))
      ;
    else if (A == "--strict")
      Opts.Strict = true;
    else if (A == "--verbose")
      Opts.Verbose = true;
    else if (A == "--stats")
      Opts.Stats = true;
    else
      return usage();
  }
  if ((Opts.Resume || Opts.CheckJournal) && Opts.JournalPath.empty()) {
    std::fprintf(stderr, "m3batch: --%s requires --journal\n",
                 Opts.Resume ? "resume" : "check-journal");
    return 2;
  }

  {
    // Arm the fault schedule (drills and robustness tests only); the
    // env form crosses into workers this process forks.
    std::string FaultError;
    fault::FaultInjector &FI = fault::FaultInjector::instance();
    bool ArmOk = Opts.Faults.empty() ? FI.armFromEnv(FaultError)
                                     : FI.arm(Opts.Faults, FaultError);
    if (!ArmOk) {
      std::fprintf(stderr, "m3batch: %s\n", FaultError.c_str());
      return 2;
    }
  }

  if (Opts.CheckJournal) {
    // Offline journal validation: load (repairing a torn tail like
    // --resume would), report, touch nothing else. Lets the corruption
    // fuzz exercise the loader without paying for compiles.
    std::vector<JournalRecord> Records;
    std::string Error, RepairNote;
    if (!Journal::load(Opts.JournalPath, Records, Error, /*RepairTail=*/true,
                       &RepairNote)) {
      std::fprintf(stderr, "m3batch: %s\n", Error.c_str());
      return 3;
    }
    size_t Finals = 0;
    for (const JournalRecord &R : Records)
      Finals += R.Final;
    std::printf("m3batch: journal-check: records=%zu finals=%zu repaired=%d\n",
                Records.size(), Finals, RepairNote.empty() ? 0 : 1);
    return 0;
  }

  // Assemble the job list.
  std::vector<std::string> Names = Opts.JobNames;
  if (Names.empty() && !Opts.Gen)
    for (const WorkloadInfo &W : allWorkloads())
      if (!W.Interactive)
        Names.push_back(W.Name);
  for (uint64_t S = 1; S <= Opts.Gen; ++S)
    Names.push_back("gen:" + std::to_string(S));

  std::vector<BatchJob> Jobs;
  for (const std::string &N : Names) {
    BatchJob J;
    if (!makeJob(N, Opts, J)) {
      std::fprintf(stderr,
                   "m3batch: unknown job '%s' (not a workload, file, "
                   "gen:SEED or planted fault)\n",
                   N.c_str());
      return 2;
    }
    Jobs.push_back(std::move(J));
  }

  BatchOptions BO;
  BO.Parallelism = Opts.Cfg.Parallel;
  BO.Limits.WallMs = Opts.Cfg.TimeoutMs;
  BO.Limits.CpuSeconds = Opts.Cfg.CpuSeconds;
  BO.Limits.MemoryMB = Opts.Cfg.MemoryMB;
  BO.Retry.MaxAttempts = Opts.Cfg.Retries;
  BO.Retry.BackoffBaseMs = Opts.Cfg.BackoffMs;
  BO.Retry.BackoffCapMs = Opts.Cfg.BackoffCapMs;
  BO.JournalPath = Opts.JournalPath;
  BO.Resume = Opts.Resume;
  BO.JournalFsync = Opts.JournalFsync;
  BO.CrashDir = Opts.CrashDir;
  BO.TracePath = Opts.TracePath;
  BO.Verbose = Opts.Verbose;
  BO.RerunCommand = [&Opts](const BatchJob &J, DegradeLevel D,
                            const std::string &InputPath) -> std::string {
    if (!J.Id.empty() && J.Id[0] == '@')
      return "";
    std::string Cmd = "m3lc run --verify-each";
    if (D == DegradeLevel::NoOpt)
      Cmd += " --no-rle";
    else if (D == DegradeLevel::TypeDecl)
      Cmd += " --level=typedecl";
    else {
      Cmd += " --level=" + Opts.Cfg.Level;
      if (Opts.Pipeline)
        Cmd += " --pipeline";
      if (Opts.PRE)
        Cmd += " --pre";
      if (Opts.VerifyAnalyses)
        Cmd += " --verify-analyses";
      if (Opts.ParallelOpt)
        Cmd += " --parallel-opt=" + std::to_string(Opts.ParallelOpt);
    }
    if (Opts.Cfg.AnalysisBudget)
      Cmd += " --analysis-budget=" + std::to_string(Opts.Cfg.AnalysisBudget);
    Cmd += " " + InputPath;
    return Cmd;
  };

  // Configure the partition cache before any fork: shared mode's mmap
  // segment must exist in the parent so every worker inherits the
  // mapping (workers seal it read-only and ship entries home in the
  // payload for the parent to publish).
  PartitionCacheRuntime::instance().configure(Opts.PartitionCache,
                                              Opts.PartitionCacheMB << 20);

  BatchResult R = runBatch(Jobs, BO);
  if (!R.ok()) {
    std::fprintf(stderr, "m3batch: %s\n", R.Error.c_str());
    return 3;
  }

  if (R.Skipped)
    std::printf("m3batch: resume: skipped %u finished job%s\n", R.Skipped,
                R.Skipped == 1 ? "" : "s");
  for (const JobFinal &F : R.Finals) {
    std::printf("m3batch: %-14s %-11s attempts=%u level=%s", F.Id.c_str(),
                jobOutcomeName(F.Outcome), F.Attempts,
                degradeLevelName(F.Level));
    if (F.HasResult)
      std::printf(" Main()=%lld", static_cast<long long>(F.Result));
    std::printf("\n");
  }
  unsigned Degraded = 0;
  for (const JobFinal &F : R.Finals)
    Degraded += F.Outcome == JobOutcome::Ok && F.Level != DegradeLevel::Full;
  std::printf("m3batch: %zu job%s: %u ok (%u degraded), %u diagnostics, "
              "%u crash, %u timeout, %u internal; %u skipped\n",
              R.Finals.size() + R.Skipped,
              R.Finals.size() + R.Skipped == 1 ? "" : "s",
              R.count(JobOutcome::Ok), Degraded,
              R.count(JobOutcome::Diagnostics), R.count(JobOutcome::Crash),
              R.count(JobOutcome::Timeout), R.count(JobOutcome::Internal),
              R.Skipped);
  if (Opts.Stats && StatsRegistry::instance().anyNonZero()) {
    std::fputs("\n===--- Statistics ---===\n", stdout);
    std::fputs(StatsRegistry::instance().table().c_str(), stdout);
  }
  if (Opts.Stats && MetricsRegistry::instance().anyNonZero()) {
    std::fputs("\n", stdout);
    std::fputs(MetricsRegistry::instance().table().c_str(), stdout);
  }
  return Opts.Strict && !R.allOk() ? 1 : 0;
}
