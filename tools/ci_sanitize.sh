#!/bin/sh
# Sanitizer CI sweep: configure a separate build tree with
# -fsanitize=address,undefined (TBAA_SANITIZERS=ON), build everything,
# and run the full test suite plus a fuzz sweep under instrumentation.
#
#   tools/ci_sanitize.sh [build-dir]
#
# Opt-in (not part of the default ctest run): the instrumented suite is
# several times slower than the plain one. See docs/ROBUSTNESS.md.
set -eu

SRC_DIR=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$SRC_DIR/build-sanitize"}

export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1:abort_on_error=1}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DTBAA_SANITIZERS=ON
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j
"$BUILD_DIR/tools/m3fuzz" --seeds=100 --out="$BUILD_DIR/m3fuzz-sanitize"
echo "ci_sanitize: clean"
