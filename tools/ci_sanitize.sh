#!/bin/sh
# Sanitizer CI sweep: configure a separate build tree with
# -fsanitize=address,undefined (TBAA_SANITIZERS=ON), build everything,
# and run the full test suite plus a fuzz sweep under instrumentation.
# A second tree built with TBAA_SANITIZERS=thread runs the parallel
# pass-pipeline subset under ThreadSanitizer.
#
#   tools/ci_sanitize.sh [build-dir]
#
# Opt-in (not part of the default ctest run): the instrumented suite is
# several times slower than the plain one. See docs/ROBUSTNESS.md.
set -eu

SRC_DIR=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$SRC_DIR/build-sanitize"}

export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1:abort_on_error=1}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DTBAA_SANITIZERS=ON
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j
"$BUILD_DIR/tools/m3fuzz" --seeds=100 --out="$BUILD_DIR/m3fuzz-sanitize"

# The batch service forks sandboxed workers, installs signal handlers on
# an alternate stack and plants real crashes -- exactly the code most
# worth a dedicated pass under ASan/UBSan. (RLIMIT_AS is skipped in
# sanitizer builds, and the planted crasher uses __builtin_trap()/SIGILL
# there, since ASan's own SEGV machinery would swallow a null store
# before the worker's crash handler ever saw a signal.)
"$BUILD_DIR/tests/tbaa_tests" \
    --gtest_filter='Worker*:Watchdog*:Journal*:Batch*:Retry*:Clock*:CrashCapture*:SafeIO*:LineReader*:Session*:Serve*'
"$BUILD_DIR/tools/m3batch" "--jobs=@crash,@hang,@budget,format" \
    --parallel=2 --timeout-ms=4000 --retries=2 --backoff-ms=1 \
    --journal="$BUILD_DIR/m3batch-sanitize.jsonl" \
    --crash-dir="$BUILD_DIR/m3batch-sanitize-crashes"

# Daemon pass: warm workers recycle process state across jobs, exactly
# where a stale pointer or leaked fd would fester -- run the wire
# checker's golden daemon scenario (planted crasher + SIGTERM drain)
# against the instrumented m3serve.
if command -v python3 >/dev/null 2>&1; then
    python3 "$SRC_DIR/tools/check_journal_json.py" serve \
        "$BUILD_DIR/tools/m3serve"
fi

# Tracing pass: the recorder streams from signal-handler-adjacent worker
# code (SafeIO across fork), so run both drivers with --trace under the
# instrumented build and validate the timelines they emit.
"$BUILD_DIR/tools/m3lc" run --pipeline --pre \
    --trace="$BUILD_DIR/m3lc-sanitize-trace.json" format >/dev/null
"$BUILD_DIR/tools/m3batch" "--jobs=@crash,@hang,format" \
    --parallel=2 --timeout-ms=4000 --retries=2 --backoff-ms=1 \
    --trace="$BUILD_DIR/m3batch-sanitize-trace.json" \
    --journal="$BUILD_DIR/m3batch-sanitize-trace.jsonl"
if command -v python3 >/dev/null 2>&1; then
    python3 "$SRC_DIR/tools/check_trace_json.py" m3lc \
        "$BUILD_DIR/tools/m3lc"
    python3 "$SRC_DIR/tools/check_trace_json.py" m3batch \
        "$BUILD_DIR/tools/m3batch"
fi

# ThreadSanitizer pass: a second build tree with -fsanitize=thread
# (TSan and ASan cannot share a binary) covering exactly the code that
# runs multithreaded -- the work-stealing pool and the parallel
# per-function pass schedule -- first through the dedicated tests, then
# through a real multi-workload m3lc sweep at 4 workers.
TSAN_BUILD_DIR="$SRC_DIR/build-sanitize-tsan"
export TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1}
cmake -B "$TSAN_BUILD_DIR" -S "$SRC_DIR" -DTBAA_SANITIZERS=thread
cmake --build "$TSAN_BUILD_DIR" -j --target tbaa_tests --target m3lc
"$TSAN_BUILD_DIR/tests/tbaa_tests" --gtest_filter='ThreadPool*:Parallel*'
for W in format slisp k-tree m3cg; do
    "$TSAN_BUILD_DIR/tools/m3lc" run --pipeline --pre \
        --parallel-opt=4 --stats "$W" >/dev/null
done

# Chaos pass: the deterministic fault schedules (mid-append SIGKILLs,
# ENOSPC, torn writes, fork exhaustion) drive the journal repair and
# backpressure paths under instrumentation, where a stale pointer in a
# recovery path would otherwise hide behind the fault being rare.
if command -v python3 >/dev/null 2>&1; then
    python3 "$SRC_DIR/tools/chaos_drill.py" \
        "$BUILD_DIR/tools/m3batch" "$BUILD_DIR/tools/m3serve"
fi
echo "ci_sanitize: clean"
