//===- CompileJobs.h - Shared compile-job bodies for m3batch/m3serve ------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one compile-and-run worker body both service drivers execute
/// inside their sandboxed children, plus the job-name resolver they
/// share: bundled workload names, .m3l file paths, `gen:SEED` generated
/// programs, and the planted fault injectors (`@crash`, `@hang`,
/// `@budget`) the robustness tests use. m3batch forks a cold worker per
/// attempt; m3serve loops jobs through warm workers -- the body itself
/// must not care, so it takes everything through arguments and reports
/// through the payload fd and the m3lc exit-code contract (0 ok,
/// 1 diagnostics/trap, 2 usage, 3 internal).
///
//===----------------------------------------------------------------------===//

#ifndef TBAA_TOOLS_COMPILEJOBS_H
#define TBAA_TOOLS_COMPILEJOBS_H

#include "analysis/AnalysisManager.h"
#include "core/PartitionCache.h"
#include "exec/VM.h"
#include "ir/Pipeline.h"
#include "opt/PassPipeline.h"
#include "service/BatchConfig.h"
#include "service/Retry.h"
#include "support/Budget.h"
#include "support/JSONUtil.h"
#include "support/Metrics.h"
#include "support/SafeIO.h"
#include "workloads/Generator.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace tbaa::jobs {

inline AliasLevel levelFromName(const std::string &Name) {
  if (Name == "typedecl")
    return AliasLevel::TypeDecl;
  if (Name == "fieldtypedecl")
    return AliasLevel::FieldTypeDecl;
  return AliasLevel::SMFieldTypeRefs;
}

/// Pipeline toggles the drivers pass through to every job.
struct CompileFlags {
  bool Pipeline = false;
  bool PRE = false;
  bool VerifyAnalyses = false;
  /// Worker-pool width for the parallel per-function pass schedule
  /// (--parallel-opt); 0 runs the sequential pipeline.
  unsigned ParallelOpt = 0;
};

/// The compile-and-run worker body at one ladder rung. Runs inside a
/// sandboxed child (cold or warm); follows the m3lc exit-code contract.
inline int runCompileJob(const std::string &Source, const BatchConfig &Cfg,
                         const CompileFlags &Flags, DegradeLevel D,
                         int PayloadFd) {
  // Metrics are on in every worker: the oracle latency histogram feeds
  // the per-job summary in the payload (and thence the journal).
  MetricsRegistry::instance().setEnabled(true);
  // Fork-isolated workers map the shared partition segment read-only
  // before touching any cache state (no-op elsewhere).
  PartitionCacheRuntime::instance().sealWorkerView();
  // Fleet-wide per-job defaults (--config): analysis budget and the
  // diagnostic cap govern every worker identically.
  BudgetRegistry::instance().setAllLimits(Cfg.AnalysisBudget);
  DiagnosticEngine Diags;
  Diags.setMaxDiagnostics(Cfg.MaxErrors);
  Compilation C = compileSource(Source, Diags);
  if (!C.ok()) {
    std::fputs(Diags.str().c_str(), stderr);
    return 1;
  }

  uint64_t PcacheHits = 0, PcacheMisses = 0;
  if (D != DegradeLevel::NoOpt) {
    AliasLevel L = D == DegradeLevel::Full ? levelFromName(Cfg.Level)
                                           : AliasLevel::TypeDecl;
    // One analysis manager per job: context, oracle, call graph, mod-ref,
    // dominators and loops are built once here and shared by every pass.
    AnalysisManager AM(C.ast(), C.types(),
                       {.Level = L, .VerifyAnalyses = Flags.VerifyAnalyses});
    PipelineOptions PO;
    PO.Devirt = PO.Inline = PO.CopyProp =
        Flags.Pipeline && D == DegradeLevel::Full;
    PO.RLE = true;
    PO.PRE = Flags.PRE && D == DegradeLevel::Full;
    PO.ParallelThreads = Flags.ParallelOpt;
    PO.VerifyEach = true;
    PO.VerifyAnalyses = Flags.VerifyAnalyses;
    OptPipeline P(AM, PO);
    if (PipelineFailure F = P.run(C.IR); F.failed()) {
      std::fprintf(stderr,
                   "compile worker: IR verification failed after pass '%s' "
                   "in function '%s':\n%s\n",
                   F.Pass.c_str(), F.Function.c_str(), F.Error.c_str());
      return 3;
    }
    if (const AliasClassEngine *Eng = AM.aliasClasses()) {
      PcacheHits = Eng->stats().CacheHits;
      PcacheMisses = Eng->stats().CacheMisses;
    }
  }

  VM Machine(C.IR);
  if (!Machine.runInit()) {
    std::fprintf(stderr, "compile worker: %s\n",
                 Machine.trapMessage().c_str());
    return 1;
  }
  std::optional<int64_t> R = Machine.callFunction("Main");
  if (!R) {
    std::fprintf(stderr, "compile worker: %s\n",
                 Machine.trapped() ? Machine.trapMessage().c_str()
                                   : "program has no Main(): INTEGER");
    return 1;
  }
  // Flat payload object (the parent's parser rejects nesting): result
  // plus the oracle latency summary for this job's journal record.
  json::Writer W;
  W.beginObject();
  W.key("main").value(static_cast<int64_t>(*R));
  W.key("degrade").value(degradeLevelName(D));
  if (const Histogram *H =
          MetricsRegistry::instance().findHistogram("oracle", "query-ns")) {
    Histogram::Snapshot S = H->snapshot();
    W.key("oracle_queries").value(S.Count);
    W.key("oracle_p50_ns").value(S.quantile(0.50));
    W.key("oracle_p90_ns").value(S.quantile(0.90));
    W.key("oracle_max_ns").value(S.Max);
  }
  // Partition-cache tallies plus any entries a fork-isolated worker
  // built: the parent publishes them into the shared segment on settle
  // (workers never write it). Absent with --partition-cache=off so the
  // legacy payload stays byte-identical.
  if (PartitionCacheRuntime::instance().enabled()) {
    W.key("pcache_hit").value(PcacheHits);
    W.key("pcache_miss").value(PcacheMisses);
    std::vector<std::string> Entries =
        PartitionCacheRuntime::instance().drainPendingHex();
    for (size_t I = 0; I != Entries.size(); ++I)
      W.key("pcache_entry_" + std::to_string(I)).value(Entries[I]);
  }
  W.endObject();
  std::string Line = W.str() + "\n";
  safeio::writeAll(PayloadFd, Line.data(), Line.size());
  return 0;
}

inline std::string loadFileOrEmpty(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return {};
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Resolves a non-fault job name (workload, gen:SEED, .m3l path) to M3L
/// source. Returns false on an unresolvable name.
inline bool resolveJobSource(const std::string &Name, std::string &Source) {
  if (Name.rfind("gen:", 0) == 0) {
    char *End = nullptr;
    uint64_t Seed = std::strtoull(Name.c_str() + 4, &End, 10);
    if (!End)
      return false;
    GeneratorOptions GO;
    GO.Seed = Seed;
    // Optional ":sN" suffix: N extra seed-independent shape types, the
    // shared-type-shape sweep the partition-cache bench compiles.
    if (*End == ':') {
      if (End[1] != 's')
        return false;
      char *End2 = nullptr;
      unsigned long Shapes = std::strtoul(End + 2, &End2, 10);
      if (!End2 || *End2)
        return false;
      GO.ShapeTypes = static_cast<unsigned>(Shapes);
    } else if (*End) {
      return false;
    }
    Source = generateProgram(GO);
    return true;
  }
  if (const WorkloadInfo *W = findWorkload(Name)) {
    Source = W->Source;
    return true;
  }
  Source = loadFileOrEmpty(Name);
  return !Source.empty();
}

inline std::vector<std::string> splitCommas(const std::string &S) {
  std::vector<std::string> Out;
  std::istringstream In(S);
  std::string Tok;
  while (std::getline(In, Tok, ','))
    if (!Tok.empty())
      Out.push_back(Tok);
  return Out;
}

} // namespace tbaa::jobs

#endif // TBAA_TOOLS_COMPILEJOBS_H
