#!/usr/bin/env python3
"""Schema and resume check for the m3batch/m3serve JSONL journals.

Batch mode drives the m3batch binary through the two flagship
robustness scenarios (docs/ROBUSTNESS.md) and validates the journal it
leaves behind:

  * Planted batch: a SIGSEGV worker (@crash), an infinite loop (@hang),
    a budget-starved compile (@budget) and a clean workload must all
    settle -- the batch exits 0, every journal line parses as a flat
    JSON object matching the documented schema, attempts per job are
    sequential and walk the degradation ladder downward, exactly one
    record per job is final, crash/timeout records carry a signal, and
    retried attempts carry the scheduled backoff.

  * Interrupted batch: run job A to completion, then rerun with jobs
    A+B under --resume. Only B may execute (the resume banner reports
    one skipped job) and A's journal record must survive untouched.

  * Torn tail: a journal ending in a half-written record must load
    under --check-journal with the tail repaired (truncated, warned,
    counted) and then resume cleanly.

  * Corrupt tail fuzz: corrupt the golden journal's final line one byte
    at a time (flips and truncations). Every variant must either load
    with the tail repaired or hard-fail -- never parse corrupted bytes
    into a record, and never touch interior records.

Every journal line carries a "crc" field (CRC-32 of the record without
it); this checker recomputes it. Records without the field stay legal
(old journals), but a present-and-wrong crc is a violation.

Serve mode starts an m3serve daemon, talks to it over its Unix socket
and validates the wire schema end to end: health/stats responses carry
the documented counters, each compile response is a journal-schema
final record that matches the journal's own final record for that job
byte for byte (a planted @crash included, which must walk the ladder
without taking the daemon down), malformed and unknown requests earn
`{"error":"bad-request"}`, and a SIGTERM drain exits 0 leaving a
journal that passes the same per-job invariants as the batch one.

Usage: check_journal_json.py <path-to-m3batch-binary>
       check_journal_json.py serve <path-to-m3serve-binary>
Exit status 0 on success, 1 on any violation.
"""

import json
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
import zlib
from pathlib import Path

OUTCOMES = {"ok", "diagnostics", "usage", "internal", "crash", "timeout"}
LADDER = {"full": 0, "typedecl": 1, "noopt": 2}
SCHEMA = (("job", str), ("attempt", int), ("degrade", str), ("outcome", str),
          ("exit", int), ("signal", int), ("wall_ms", int), ("cpu_ms", int),
          ("peak_rss_kb", int), ("minflt", int), ("majflt", int),
          ("backoff_ms", int), ("final", bool))
# Optional per-job oracle latency summary, present all-or-nothing on
# records whose worker ran a compile to completion.
ORACLE_KEYS = ("oracle_queries", "oracle_p50_ns", "oracle_p90_ns",
               "oracle_max_ns")
# Optional robustness keys: "quarantined" flags a final record whose
# outcome is still retryable (a poison job that exhausted the ladder);
# "crc" is the record checksum, always last when present.
RETRYABLE = {"crash", "timeout", "internal"}

errors = []


def fail(msg):
    errors.append(msg)


def check_crc(raw, where):
    """Validates the trailing "crc" field against the rest of the line."""
    match = re.search(r',"crc":(\d+)\}$', raw)
    if not match:
        fail(f'{where}: "crc" is present but not the trailing key')
        return
    body = raw[:match.start()] + "}"
    want = zlib.crc32(body.encode())
    if int(match.group(1)) != want:
        fail(f"{where}: crc {match.group(1)} does not match payload "
             f"(want {want})")


def parse_journal(path):
    records = []
    for number, line in enumerate(path.read_text().splitlines(), 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{path.name}:{number}: invalid JSON: {exc}")
            continue
        if not isinstance(record, dict):
            fail(f"{path.name}:{number}: not an object")
            continue
        for key, kind in SCHEMA:
            if key not in record:
                fail(f"{path.name}:{number}: missing '{key}'")
            elif not isinstance(record[key], kind) or (
                    kind is int and isinstance(record[key], bool)):
                fail(f"{path.name}:{number}: '{key}' has type "
                     f"{type(record[key]).__name__}")
        if "crc" in record:
            check_crc(line, f"{path.name}:{number}")
        if "quarantined" in record:
            if record["quarantined"] is not True:
                fail(f"{path.name}:{number}: quarantined = "
                     f"{record['quarantined']!r}, only true is ever written")
            elif not record.get("final"):
                fail(f"{path.name}:{number}: quarantined non-final record")
            elif record.get("outcome") not in RETRYABLE:
                fail(f"{path.name}:{number}: quarantined with outcome "
                     f"{record.get('outcome')!r}")
        extra = (set(record) - {key for key, _ in SCHEMA} - {"result"}
                 - set(ORACLE_KEYS) - {"crc", "quarantined"})
        if extra:
            fail(f"{path.name}:{number}: undocumented keys {sorted(extra)}")
        present = [key for key in ORACLE_KEYS if key in record]
        if present and len(present) != len(ORACLE_KEYS):
            fail(f"{path.name}:{number}: partial oracle summary {present}")
        for key in present:
            if not isinstance(record[key], int) or isinstance(
                    record[key], bool):
                fail(f"{path.name}:{number}: '{key}' has type "
                     f"{type(record[key]).__name__}")
        if len(present) == len(ORACLE_KEYS) and not (
                record["oracle_p50_ns"] <= record["oracle_p90_ns"]
                <= record["oracle_max_ns"]):
            fail(f"{path.name}:{number}: oracle quantiles out of order")
        if record.get("degrade") not in LADDER:
            fail(f"{path.name}:{number}: unknown degrade level "
                 f"{record.get('degrade')!r}")
        if record.get("outcome") not in OUTCOMES:
            fail(f"{path.name}:{number}: unknown outcome "
                 f"{record.get('outcome')!r}")
        records.append(record)
    return records


def check_job_invariants(by_job):
    """Per-job journal invariants shared by the batch and serve modes."""
    for job, attempts in by_job.items():
        for index, record in enumerate(attempts):
            if record["attempt"] != index + 1:
                fail(f"{job}: attempt numbers not sequential: "
                     f"{[r['attempt'] for r in attempts]}")
                break
        levels = [LADDER[r["degrade"]] for r in attempts]
        if levels != sorted(levels):
            fail(f"{job}: degrade levels climb back up: "
                 f"{[r['degrade'] for r in attempts]}")
        finals = [r for r in attempts if r["final"]]
        if len(finals) != 1 or not attempts[-1]["final"]:
            fail(f"{job}: expected exactly the last record final, got "
                 f"{[r['final'] for r in attempts]}")
        for record in attempts:
            # backoff_ms is the delay scheduled *because of* this attempt,
            # so it is positive exactly on retried (non-final) attempts.
            if record["final"] != (record["backoff_ms"] == 0):
                fail(f"{job}: attempt {record['attempt']}: backoff_ms="
                     f"{record['backoff_ms']} with final={record['final']}")


def check_planted(binary, tmp):
    journal = tmp / "planted.jsonl"
    proc = subprocess.run(
        [str(binary), "--jobs=@crash,@hang,@budget,format", "--parallel=2",
         "--timeout-ms=2000", "--retries=2", "--backoff-ms=1",
         f"--journal={journal}", f"--crash-dir={tmp / 'crashes'}"],
        capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"planted batch exited {proc.returncode} (want 0: job "
             f"failures are outcomes, not batch failures):\n{proc.stderr}")
        return
    records = parse_journal(journal)
    # Old journals may lack checksums; freshly written ones never do.
    for number, record in enumerate(records, 1):
        if "crc" not in record:
            fail(f"planted: record {number} carries no crc")

    by_job = {}
    for record in records:
        by_job.setdefault(record["job"], []).append(record)
    if set(by_job) != {"@crash", "@hang", "@budget", "format"}:
        fail(f"journal covers jobs {sorted(by_job)}, expected the 4 planted")

    check_job_invariants(by_job)

    def final(job):
        return [r for r in by_job.get(job, []) if r["final"]][0]

    # @crash dies on SIGSEGV (SIGABRT under ASan's abort_on_error), both
    # attempts; @hang is killed by the watchdog; @budget degrades
    # *inside* the worker and still succeeds; format is simply clean.
    for job, want_outcome, want_attempts in (("@crash", "crash", 2),
                                             ("@hang", "timeout", 2),
                                             ("@budget", "ok", 1),
                                             ("format", "ok", 1)):
        if job not in by_job:
            continue
        record = final(job)
        if record["outcome"] != want_outcome:
            fail(f"{job}: final outcome {record['outcome']!r}, "
                 f"want {want_outcome!r}")
        if len(by_job[job]) != want_attempts:
            fail(f"{job}: {len(by_job[job])} attempts, want {want_attempts}")
        if want_outcome in ("crash", "timeout") and record["signal"] == 0:
            fail(f"{job}: {want_outcome} record carries no signal")
        if want_outcome == "ok" and "result" not in record:
            fail(f"{job}: ok record carries no result")
        # Completed compiles summarize their oracle latency histogram.
        if want_outcome == "ok" and "oracle_queries" not in record:
            fail(f"{job}: ok record carries no oracle_* summary")
    if "format" in by_job and final("format").get("oracle_queries", 0) <= 0:
        fail("format: clean full-precision compile reports zero oracle "
             "queries")

    bundle = tmp / "crashes" / "@crash-a1" / "report.txt"
    if not bundle.exists():
        fail(f"no triage bundle at {bundle}")


def check_resume(binary, tmp):
    journal = tmp / "resume.jsonl"

    def run(jobs, resume):
        cmd = [str(binary), f"--jobs={jobs}", f"--journal={journal}"]
        if resume:
            cmd.append("--resume")
        return subprocess.run(cmd, capture_output=True, text=True,
                              timeout=600)

    first = run("format", resume=False)
    if first.returncode != 0:
        fail(f"resume scenario: first run exited {first.returncode}")
        return
    before = journal.read_text()

    second = run("format,dformat", resume=True)
    if second.returncode != 0:
        fail(f"resume scenario: second run exited {second.returncode}")
        return
    if "skipped 1 finished job" not in second.stdout:
        fail("resume scenario: no skip banner -- the finished job re-ran?")
    if not journal.read_text().startswith(before):
        fail("resume scenario: --resume rewrote the settled record")
    jobs = [r["job"] for r in parse_journal(journal)]
    if jobs != ["format", "dformat"]:
        fail(f"resume scenario: journal holds {jobs}, expected exactly "
             f"['format', 'dformat']")


def run_check(binary, journal):
    """m3batch --check-journal: returns (rc, records, repaired, stderr)."""
    proc = subprocess.run(
        [str(binary), "--check-journal", f"--journal={journal}"],
        capture_output=True, text=True, timeout=600)
    match = re.search(r"records=(\d+) finals=(\d+) repaired=(\d+)",
                      proc.stdout)
    if proc.returncode == 0 and not match:
        fail(f"check-journal: no summary line in {proc.stdout!r}")
        return proc.returncode, -1, -1, proc.stderr
    return (proc.returncode, int(match.group(1)) if match else -1,
            int(match.group(3)) if match else -1, proc.stderr)


def check_tail_repair(binary, tmp):
    journal = tmp / "tail.jsonl"
    first = subprocess.run(
        [str(binary), "--jobs=format", f"--journal={journal}"],
        capture_output=True, text=True, timeout=600)
    if first.returncode != 0:
        fail(f"tail repair: seed run exited {first.returncode}")
        return
    clean = journal.read_bytes()

    # A worker killed mid-append leaves half a record; the loader must
    # truncate it (with a warning and the repair counter), not refuse
    # the journal or invent a record from the torn bytes.
    torn = clean.splitlines()[0]
    journal.write_bytes(clean + torn[:len(torn) // 2])
    rc, records, repaired, err = run_check(binary, journal)
    if rc != 0:
        fail(f"tail repair: check-journal exited {rc}: {err}")
        return
    if (records, repaired) != (1, 1):
        fail(f"tail repair: records={records} repaired={repaired}, "
             f"want 1 and 1")
    if "repaired torn tail" not in err:
        fail(f"tail repair: no repair warning on stderr: {err!r}")
    if journal.read_bytes() != clean:
        fail("tail repair: repair did not restore the pre-tear journal")

    # The repaired journal resumes like nothing happened.
    second = subprocess.run(
        [str(binary), "--jobs=format,dformat", f"--journal={journal}",
         "--resume"], capture_output=True, text=True, timeout=600)
    if second.returncode != 0:
        fail(f"tail repair: resume exited {second.returncode}")
    elif "skipped 1 finished job" not in second.stdout:
        fail("tail repair: resume re-ran the settled job")


def check_corrupt_tail(binary, tmp):
    journal = tmp / "fuzz.jsonl"
    seed = subprocess.run(
        [str(binary), "--jobs=format,dformat", f"--journal={journal}"],
        capture_output=True, text=True, timeout=600)
    if seed.returncode != 0:
        fail(f"corrupt tail: seed run exited {seed.returncode}")
        return
    clean = journal.read_bytes()
    rc, total, repaired, _ = run_check(binary, journal)
    if (rc, repaired) != (0, 0):
        fail(f"corrupt tail: clean journal rc={rc} repaired={repaired}")
        return
    last_start = clean.rstrip(b"\n").rfind(b"\n") + 1

    def verdict(data, what, interior=False):
        journal.write_bytes(data)
        rc, records, repaired, _ = run_check(binary, journal)
        if rc not in (0, 3):
            fail(f"corrupt tail: {what}: exited {rc}, want 0 or 3")
        elif rc == 0 and interior:
            # Interior corruption is never repairable: either the line
            # still checks out bitwise-insensitively (a flip inside the
            # crc key name demotes the record to unchecksummed) and
            # everything loads, or the load hard-fails. A shrunken
            # record count here would mean repair ate settled history.
            if records != total:
                fail(f"corrupt tail: {what}: interior corruption loaded "
                     f"{records}/{total} records")
        elif rc == 0:
            # Tail corruption: either detected and repaired away (one
            # record shorter) or, for flips that only damage the crc
            # key itself, loaded in full. Anything else is a mis-parse.
            if records == total - 1 and repaired != 1:
                fail(f"corrupt tail: {what}: dropped the tail without "
                     f"reporting a repair")
            elif records not in (total - 1, total):
                fail(f"corrupt tail: {what}: loaded {records} records "
                     f"from a {total}-record journal")

    # Byte-by-byte flips across the final record.
    for pos in range(last_start, len(clean)):
        flipped = bytearray(clean)
        flipped[pos] ^= 0x20  # stays printable-ish, never a no-op
        verdict(bytes(flipped), f"flip at +{pos - last_start}")
    # Truncations that tear the final record.
    step = max(1, (len(clean) - last_start) // 16)
    for end in range(last_start + 1, len(clean), step):
        verdict(clean[:end], f"truncate at +{end - last_start}")
    # One interior flip per byte of the first record.
    first_end = clean.find(b"\n")
    for pos in range(0, first_end):
        flipped = bytearray(clean)
        flipped[pos] ^= 0x20
        verdict(bytes(flipped), f"interior flip at +{pos}", interior=True)


# Counters every health response must carry; stats adds the second set.
HEALTH_KEYS = ("health", "workers", "busy", "queue_depth", "sessions",
               "admitted", "completed", "overloaded", "retries",
               "downgrades", "respawns", "recycles", "uptime_ms")
STATS_KEYS = HEALTH_KEYS + (
    "disconnects", "cancelled", "quarantined", "bad_requests",
    "rejected_draining", "max_queue", "max_queue_per_client",
    "queue_wait_p50_ms", "queue_wait_p90_ms", "job_warm_p50_ms",
    "job_cold_p50_ms")


def check_status(line, keys, where):
    try:
        status = json.loads(line)
    except json.JSONDecodeError as exc:
        fail(f"{where}: invalid JSON: {exc}")
        return {}
    for key in keys:
        if key not in status:
            fail(f"{where}: missing '{key}'")
        elif key != "health" and (not isinstance(status[key], int)
                                  or isinstance(status[key], bool)):
            fail(f"{where}: '{key}' = {status[key]!r} is not an int")
    if set(status) - set(keys):
        fail(f"{where}: undocumented keys {sorted(set(status) - set(keys))}")
    if status.get("health") not in ("ok", "draining"):
        fail(f"{where}: health = {status.get('health')!r}")
    return status


def serve_connect(path, deadline_s=5.0):
    giveup = time.monotonic() + deadline_s
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(str(path))
            return sock
        except OSError:
            sock.close()
            if time.monotonic() >= giveup:
                return None
            time.sleep(0.02)


def check_serve(binary, tmp):
    sock_path = tmp / "serve.sock"
    journal = tmp / "serve.jsonl"
    daemon = subprocess.Popen(
        [str(binary), "serve", f"--socket={sock_path}", "--workers=2",
         "--timeout-ms=2000", "--retries=2", "--backoff-ms=1",
         f"--journal={journal}", "--idle-exit-ms=60000"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        sock = serve_connect(sock_path)
        if sock is None:
            fail("serve: daemon never bound its socket")
            return
        wire = sock.makefile("rw", newline="\n")

        wire.write('{"req":"health"}\n')
        wire.flush()
        health = check_status(wire.readline(), HEALTH_KEYS, "serve: health")
        if health.get("workers", 0) < 1:
            fail(f"serve: health reports {health.get('workers')} workers")

        # Three jobs down the wire, a planted crasher among them; each
        # response must be a journal-schema final record.
        jobs = ["format", "@budget", "@crash"]
        for job in jobs:
            wire.write(json.dumps({"job": job}) + "\n")
        wire.flush()
        responses = {}
        for _ in jobs:
            line = wire.readline()
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                fail(f"serve: response is not JSON: {exc}")
                continue
            if "error" in record:
                fail(f"serve: unexpected error response {record}")
                continue
            responses[record.get("job")] = record
        if set(responses) != set(jobs):
            fail(f"serve: responses cover {sorted(responses)}, "
                 f"expected {sorted(jobs)}")
        for job, record in responses.items():
            for key, kind in SCHEMA:
                if key not in record:
                    fail(f"serve: {job} response missing '{key}'")
                elif not isinstance(record[key], kind) or (
                        kind is int and isinstance(record[key], bool)):
                    fail(f"serve: {job} response '{key}' has type "
                         f"{type(record[key]).__name__}")
            if record.get("final") is not True:
                fail(f"serve: {job} response is not a final record")
        for job, outcome in (("format", "ok"), ("@budget", "ok"),
                             ("@crash", "crash")):
            if job in responses and responses[job].get("outcome") != outcome:
                fail(f"serve: {job} outcome "
                     f"{responses[job].get('outcome')!r}, want {outcome!r}")
        if "format" in responses and "result" not in responses["format"]:
            fail("serve: format response carries no result")
        if "@crash" in responses:
            crash = responses["@crash"]
            if crash.get("signal", 0) == 0:
                fail("serve: @crash final record carries no signal")
            if crash.get("attempt") != 2:
                fail(f"serve: @crash settled at attempt "
                     f"{crash.get('attempt')}, want the ladder spent at 2")
            # A poison job that spent the ladder is flagged, on the wire
            # and (checked below, by equality) in the journal.
            if crash.get("quarantined") is not True:
                fail("serve: @crash spent the ladder but is not "
                     "quarantined")
        for job in ("format", "@budget"):
            if job in responses and "quarantined" in responses[job]:
                fail(f"serve: healthy {job} is quarantined")

        # Garbage and unknown requests earn bad-request, not silence.
        for bad in ("this is not json", '{"req":"bogus"}', '{"job":""}'):
            wire.write(bad + "\n")
            wire.flush()
            try:
                reply = json.loads(wire.readline())
            except json.JSONDecodeError as exc:
                fail(f"serve: bad-request reply is not JSON: {exc}")
                continue
            if reply.get("error") != "bad-request":
                fail(f"serve: {bad!r} earned {reply}, want bad-request")

        wire.write('{"req":"stats"}\n')
        wire.flush()
        stats = check_status(wire.readline(), STATS_KEYS, "serve: stats")
        if stats.get("admitted") != 3 or stats.get("completed") != 3:
            fail(f"serve: stats admitted={stats.get('admitted')} "
                 f"completed={stats.get('completed')}, want 3/3")
        if stats.get("respawns", 0) < 1:
            fail("serve: @crash killed workers but stats shows no respawns")
        if stats.get("bad_requests") != 3:
            fail(f"serve: bad_requests={stats.get('bad_requests')}, want 3")
        if stats.get("quarantined") != 1:
            fail(f"serve: quarantined={stats.get('quarantined')}, want 1 "
                 f"(@crash)")

        sock.close()
        daemon.send_signal(signal.SIGTERM)
        if daemon.wait(timeout=30) != 0:
            fail(f"serve: drain exited {daemon.returncode}, want 0")

        # The journal must tell the same story the wire did, under the
        # same invariants as a batch journal.
        by_job = {}
        for record in parse_journal(journal):
            by_job.setdefault(record["job"], []).append(record)
        if set(by_job) != set(jobs):
            fail(f"serve: journal covers {sorted(by_job)}, "
                 f"expected {sorted(jobs)}")
        check_job_invariants(by_job)
        for job, record in responses.items():
            finals = [r for r in by_job.get(job, []) if r["final"]]
            if finals and finals[0] != record:
                fail(f"serve: {job} response differs from its journal "
                     f"record:\n  wire:    {record}\n  journal: {finals[0]}")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "serve":
        with tempfile.TemporaryDirectory() as tmp:
            check_serve(Path(sys.argv[2]), Path(tmp))
        if errors:
            for message in errors:
                print(f"check_journal_json: {message}", file=sys.stderr)
            return 1
        print("check_journal_json: serve wire + journal OK")
        return 0

    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    binary = Path(sys.argv[1])

    with tempfile.TemporaryDirectory() as tmp:
        check_planted(binary, Path(tmp))
        check_resume(binary, Path(tmp))
        check_tail_repair(binary, Path(tmp))
        check_corrupt_tail(binary, Path(tmp))

    if errors:
        for message in errors:
            print(f"check_journal_json: {message}", file=sys.stderr)
        return 1
    print("check_journal_json: planted + resume + tail-repair + "
          "corrupt-tail journals OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
