#!/usr/bin/env python3
"""Schema and resume check for the m3batch JSONL journal.

Drives the m3batch binary through the two flagship robustness scenarios
(docs/ROBUSTNESS.md) and validates the journal it leaves behind:

  * Planted batch: a SIGSEGV worker (@crash), an infinite loop (@hang),
    a budget-starved compile (@budget) and a clean workload must all
    settle -- the batch exits 0, every journal line parses as a flat
    JSON object matching the documented schema, attempts per job are
    sequential and walk the degradation ladder downward, exactly one
    record per job is final, crash/timeout records carry a signal, and
    retried attempts carry the scheduled backoff.

  * Interrupted batch: run job A to completion, then rerun with jobs
    A+B under --resume. Only B may execute (the resume banner reports
    one skipped job) and A's journal record must survive untouched.

Usage: check_journal_json.py <path-to-m3batch-binary>
Exit status 0 on success, 1 on any violation.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

OUTCOMES = {"ok", "diagnostics", "usage", "internal", "crash", "timeout"}
LADDER = {"full": 0, "typedecl": 1, "noopt": 2}
SCHEMA = (("job", str), ("attempt", int), ("degrade", str), ("outcome", str),
          ("exit", int), ("signal", int), ("wall_ms", int), ("cpu_ms", int),
          ("peak_rss_kb", int), ("minflt", int), ("majflt", int),
          ("backoff_ms", int), ("final", bool))
# Optional per-job oracle latency summary, present all-or-nothing on
# records whose worker ran a compile to completion.
ORACLE_KEYS = ("oracle_queries", "oracle_p50_ns", "oracle_p90_ns",
               "oracle_max_ns")

errors = []


def fail(msg):
    errors.append(msg)


def parse_journal(path):
    records = []
    for number, line in enumerate(path.read_text().splitlines(), 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{path.name}:{number}: invalid JSON: {exc}")
            continue
        if not isinstance(record, dict):
            fail(f"{path.name}:{number}: not an object")
            continue
        for key, kind in SCHEMA:
            if key not in record:
                fail(f"{path.name}:{number}: missing '{key}'")
            elif not isinstance(record[key], kind) or (
                    kind is int and isinstance(record[key], bool)):
                fail(f"{path.name}:{number}: '{key}' has type "
                     f"{type(record[key]).__name__}")
        extra = (set(record) - {key for key, _ in SCHEMA} - {"result"}
                 - set(ORACLE_KEYS))
        if extra:
            fail(f"{path.name}:{number}: undocumented keys {sorted(extra)}")
        present = [key for key in ORACLE_KEYS if key in record]
        if present and len(present) != len(ORACLE_KEYS):
            fail(f"{path.name}:{number}: partial oracle summary {present}")
        for key in present:
            if not isinstance(record[key], int) or isinstance(
                    record[key], bool):
                fail(f"{path.name}:{number}: '{key}' has type "
                     f"{type(record[key]).__name__}")
        if len(present) == len(ORACLE_KEYS) and not (
                record["oracle_p50_ns"] <= record["oracle_p90_ns"]
                <= record["oracle_max_ns"]):
            fail(f"{path.name}:{number}: oracle quantiles out of order")
        if record.get("degrade") not in LADDER:
            fail(f"{path.name}:{number}: unknown degrade level "
                 f"{record.get('degrade')!r}")
        if record.get("outcome") not in OUTCOMES:
            fail(f"{path.name}:{number}: unknown outcome "
                 f"{record.get('outcome')!r}")
        records.append(record)
    return records


def check_planted(binary, tmp):
    journal = tmp / "planted.jsonl"
    proc = subprocess.run(
        [str(binary), "--jobs=@crash,@hang,@budget,format", "--parallel=2",
         "--timeout-ms=2000", "--retries=2", "--backoff-ms=1",
         f"--journal={journal}", f"--crash-dir={tmp / 'crashes'}"],
        capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"planted batch exited {proc.returncode} (want 0: job "
             f"failures are outcomes, not batch failures):\n{proc.stderr}")
        return
    records = parse_journal(journal)

    by_job = {}
    for record in records:
        by_job.setdefault(record["job"], []).append(record)
    if set(by_job) != {"@crash", "@hang", "@budget", "format"}:
        fail(f"journal covers jobs {sorted(by_job)}, expected the 4 planted")

    for job, attempts in by_job.items():
        for index, record in enumerate(attempts):
            if record["attempt"] != index + 1:
                fail(f"{job}: attempt numbers not sequential: "
                     f"{[r['attempt'] for r in attempts]}")
                break
        levels = [LADDER[r["degrade"]] for r in attempts]
        if levels != sorted(levels):
            fail(f"{job}: degrade levels climb back up: "
                 f"{[r['degrade'] for r in attempts]}")
        finals = [r for r in attempts if r["final"]]
        if len(finals) != 1 or not attempts[-1]["final"]:
            fail(f"{job}: expected exactly the last record final, got "
                 f"{[r['final'] for r in attempts]}")
        for record in attempts:
            # backoff_ms is the delay scheduled *because of* this attempt,
            # so it is positive exactly on retried (non-final) attempts.
            if record["final"] != (record["backoff_ms"] == 0):
                fail(f"{job}: attempt {record['attempt']}: backoff_ms="
                     f"{record['backoff_ms']} with final={record['final']}")

    def final(job):
        return [r for r in by_job.get(job, []) if r["final"]][0]

    # @crash dies on SIGSEGV (SIGABRT under ASan's abort_on_error), both
    # attempts; @hang is killed by the watchdog; @budget degrades
    # *inside* the worker and still succeeds; format is simply clean.
    for job, want_outcome, want_attempts in (("@crash", "crash", 2),
                                             ("@hang", "timeout", 2),
                                             ("@budget", "ok", 1),
                                             ("format", "ok", 1)):
        if job not in by_job:
            continue
        record = final(job)
        if record["outcome"] != want_outcome:
            fail(f"{job}: final outcome {record['outcome']!r}, "
                 f"want {want_outcome!r}")
        if len(by_job[job]) != want_attempts:
            fail(f"{job}: {len(by_job[job])} attempts, want {want_attempts}")
        if want_outcome in ("crash", "timeout") and record["signal"] == 0:
            fail(f"{job}: {want_outcome} record carries no signal")
        if want_outcome == "ok" and "result" not in record:
            fail(f"{job}: ok record carries no result")
        # Completed compiles summarize their oracle latency histogram.
        if want_outcome == "ok" and "oracle_queries" not in record:
            fail(f"{job}: ok record carries no oracle_* summary")
    if "format" in by_job and final("format").get("oracle_queries", 0) <= 0:
        fail("format: clean full-precision compile reports zero oracle "
             "queries")

    bundle = tmp / "crashes" / "@crash-a1" / "report.txt"
    if not bundle.exists():
        fail(f"no triage bundle at {bundle}")


def check_resume(binary, tmp):
    journal = tmp / "resume.jsonl"

    def run(jobs, resume):
        cmd = [str(binary), f"--jobs={jobs}", f"--journal={journal}"]
        if resume:
            cmd.append("--resume")
        return subprocess.run(cmd, capture_output=True, text=True,
                              timeout=600)

    first = run("format", resume=False)
    if first.returncode != 0:
        fail(f"resume scenario: first run exited {first.returncode}")
        return
    before = journal.read_text()

    second = run("format,dformat", resume=True)
    if second.returncode != 0:
        fail(f"resume scenario: second run exited {second.returncode}")
        return
    if "skipped 1 finished job" not in second.stdout:
        fail("resume scenario: no skip banner -- the finished job re-ran?")
    if not journal.read_text().startswith(before):
        fail("resume scenario: --resume rewrote the settled record")
    jobs = [r["job"] for r in parse_journal(journal)]
    if jobs != ["format", "dformat"]:
        fail(f"resume scenario: journal holds {jobs}, expected exactly "
             f"['format', 'dformat']")


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    binary = Path(sys.argv[1])

    with tempfile.TemporaryDirectory() as tmp:
        check_planted(binary, Path(tmp))
        check_resume(binary, Path(tmp))

    if errors:
        for message in errors:
            print(f"check_journal_json: {message}", file=sys.stderr)
        return 1
    print("check_journal_json: planted + resume journals OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
