//===- m3serve.cpp - Persistent compile daemon driver ---------------------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// The warm face of the batch service (src/service/Serve.h): a long-lived
// daemon on a Unix-domain socket whose pre-forked workers survive across
// jobs, plus the matching client. Where m3batch pays fork+exec warmup
// per job, m3serve pays it once per worker; bench_batch measures the
// difference and tests/ServeTests.cpp drills the failure ladder.
//
//   m3serve serve  --socket=PATH [--workers=N] [--config=FILE]
//                  [--timeout-ms=N] [--cpu-seconds=N] [--memory-mb=N]
//                  [--retries=N] [--backoff-ms=N] [--max-queue=N]
//                  [--max-queue-per-client=N] [--retry-after-ms=N]
//                  [--max-jobs-per-worker=N] [--journal=FILE]
//                  [--journal-fsync] [--faults=SPEC] [--trace=FILE]
//                  [--idle-exit-ms=N] [--level=L]
//                  [--pipeline] [--pre] [--verify-analyses] [--verbose]
//   m3serve submit --socket=PATH [--jobs=a,b,c] [--gen=N]
//                  [--max-resubmits=N] [--strict] [--verbose]
//   m3serve health --socket=PATH
//   m3serve stats  --socket=PATH
//
// Jobs: bundled workload names, .m3l file paths, gen:SEED, and the
// planted faults @crash / @hang / @budget. Responses are journal-schema
// records (one JSON line per job); admission rejections are
// {"job":...,"error":"overloaded","retry_after_ms":N}, which submit
// honors by waiting and resending.
//
// Exit codes: serve 0 after drain/abort, 3 driver error; submit 0 all
// jobs settled (1 with --strict if any did not end ok), 2 usage,
// 3 connection/protocol error.
//
//===----------------------------------------------------------------------===//

#include "CompileJobs.h"

#include "service/Journal.h"
#include "service/Sandbox.h"
#include "service/Serve.h"
#include "support/FaultInjector.h"
#include "support/Socket.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Timing.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

using namespace tbaa;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: m3serve serve  --socket=PATH [--workers=N] [--config=FILE]\n"
      "                      [--timeout-ms=N] [--cpu-seconds=N]\n"
      "                      [--memory-mb=N] [--retries=N] [--backoff-ms=N]\n"
      "                      [--max-queue=N] [--max-queue-per-client=N]\n"
      "                      [--retry-after-ms=N] [--max-jobs-per-worker=N]\n"
      "                      [--journal=FILE] [--journal-fsync]\n"
      "                      [--faults=SPEC] [--trace=FILE]\n"
      "                      [--idle-exit-ms=N]\n"
      "                      [--level=typedecl|fieldtypedecl|smfieldtyperefs]\n"
      "                      [--pipeline] [--pre] [--parallel-opt[=N]]\n"
      "                      [--partition-cache=off|proc]\n"
      "                      [--partition-cache-mb=N]\n"
      "                      [--verify-analyses]\n"
      "                      [--verbose]\n"
      "       m3serve submit --socket=PATH [--jobs=a,b,c] [--gen=N]\n"
      "                      [--max-resubmits=N] [--strict] [--verbose]\n"
      "       m3serve health --socket=PATH\n"
      "       m3serve stats  --socket=PATH\n"
      "jobs: workload names, .m3l files, gen:SEED, @crash, @hang, @budget\n");
  return 2;
}

/// Blocking JSONL read for the client side.
bool readLine(int Fd, std::string &Buf, std::string &Line) {
  for (;;) {
    size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      Line.assign(Buf, 0, NL);
      Buf.erase(0, NL + 1);
      return true;
    }
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N > 0) {
      Buf.append(Chunk, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
}

bool sendLine(int Fd, const std::string &Line) {
  std::string L = Line;
  L += '\n';
  return net::writeAllPolled(Fd, L.data(), L.size());
}

//===----------------------------------------------------------------------===//
// serve
//===----------------------------------------------------------------------===//

/// The daemon's job body, run inside a warm worker for every attempt.
ServeJobFn makeServeJobFn(BatchConfig Cfg, jobs::CompileFlags Flags) {
  return [Cfg, Flags](const ServeRequest &Req, DegradeLevel D,
                      int PayloadFd) -> int {
    // Per-job registry resets live in the Serve worker-reuse loop itself
    // (warmWorkerMain), not here: every job body gets them, not just
    // this one.
    const std::string &Name = Req.Job;
    if (Name == "@crash") {
#if TBAA_ASAN_BUILD
      // ASan's own SEGV machinery would intercept a null store and exit
      // before our crash handler saw any signal; a trap (SIGILL) still
      // reaches the handler in instrumented builds.
      __builtin_trap();
#else
      volatile int *P = nullptr;
      *P = 1; // the planted SIGSEGV worker
      return 0;
#endif
    }
    if (Name == "@hang")
      for (;;) // the planted hung worker; only the watchdog ends it
        ::pause();
    if (Name == "@budget") {
      const WorkloadInfo *W = findWorkload("format");
      BatchConfig Starved = Cfg;
      Starved.AnalysisBudget = 16;
      return jobs::runCompileJob(W ? W->Source : "", Starved, Flags, D,
                                 PayloadFd);
    }

    std::string Source;
    auto SIt = Req.Fields.find("source");
    if (SIt != Req.Fields.end()) {
      Source = SIt->second;
    } else if (!jobs::resolveJobSource(Name, Source)) {
      std::fprintf(stderr,
                   "m3serve worker: unknown job '%s' (not a workload, "
                   "file, gen:SEED or planted fault)\n",
                   Name.c_str());
      return 2;
    }
    return jobs::runCompileJob(Source, Cfg, Flags, D, PayloadFd);
  };
}

//===----------------------------------------------------------------------===//
// submit
//===----------------------------------------------------------------------===//

struct SubmitOptions {
  std::string SocketPath;
  std::vector<std::string> JobNames;
  uint64_t Gen = 0;
  unsigned MaxResubmits = 50;
  bool Strict = false;
  bool Verbose = false;
};

int runSubmit(const SubmitOptions &Opts) {
  std::vector<std::string> Names = Opts.JobNames;
  for (uint64_t S = 1; S <= Opts.Gen; ++S)
    Names.push_back("gen:" + std::to_string(S));
  if (Names.empty()) {
    std::fprintf(stderr, "m3serve: submit: no jobs (--jobs= or --gen=)\n");
    return 2;
  }

  int Fd = net::connectUnix(Opts.SocketPath);
  if (Fd < 0) {
    std::fprintf(stderr, "m3serve: cannot connect to '%s': %s\n",
                 Opts.SocketPath.c_str(), std::strerror(errno));
    return 3;
  }

  auto Submit = [&](const std::string &Job) {
    json::Writer W;
    W.beginObject();
    W.key("req").value("compile");
    W.key("job").value(Job);
    W.endObject();
    return sendLine(Fd, W.str());
  };

  std::multiset<std::string> Pending;
  std::map<std::string, unsigned> Resubmits;
  for (const std::string &N : Names) {
    if (!Submit(N)) {
      std::fprintf(stderr, "m3serve: daemon went away mid-submit\n");
      ::close(Fd);
      return 3;
    }
    Pending.insert(N);
  }

  std::string Buf, Line;
  unsigned NotOk = 0;
  while (!Pending.empty()) {
    if (!readLine(Fd, Buf, Line)) {
      std::fprintf(stderr, "m3serve: connection lost with %zu job%s pending\n",
                   Pending.size(), Pending.size() == 1 ? "" : "s");
      ::close(Fd);
      return 3;
    }
    std::map<std::string, std::string> M;
    if (!parseFlatJSONObject(Line, M)) {
      std::fprintf(stderr, "m3serve: malformed response: %s\n", Line.c_str());
      ::close(Fd);
      return 3;
    }
    std::string Job = M.count("job") ? M["job"] : "";
    if (M.count("error")) {
      const std::string &Err = M["error"];
      if (Err == "overloaded" && !Job.empty()) {
        // Backpressure: honor the hint, resend, give up eventually.
        if (++Resubmits[Job] > Opts.MaxResubmits) {
          std::fprintf(stderr, "m3serve: %s: overloaded %u times; giving up\n",
                       Job.c_str(), Opts.MaxResubmits);
          ::close(Fd);
          return 3;
        }
        uint64_t WaitMs = 100;
        if (auto It = M.find("retry_after_ms"); It != M.end())
          WaitMs = std::strtoull(It->second.c_str(), nullptr, 10);
        if (Opts.Verbose)
          std::fprintf(stderr, "m3serve: %s overloaded; retrying in %llu ms\n",
                       Job.c_str(), (unsigned long long)WaitMs);
        ::usleep(static_cast<useconds_t>(WaitMs * 1000));
        if (!Submit(Job)) {
          std::fprintf(stderr, "m3serve: daemon went away mid-resubmit\n");
          ::close(Fd);
          return 3;
        }
        continue;
      }
      std::fprintf(stderr, "m3serve: %s%s%s\n", Err.c_str(),
                   Job.empty() ? "" : " for job ", Job.c_str());
      ::close(Fd);
      return 3;
    }
    // A final journal record settles one instance of the job.
    auto It = Pending.find(Job);
    if (It == Pending.end())
      continue; // a response for someone else's idea of our jobs
    Pending.erase(It);
    std::string Outcome = M.count("outcome") ? M["outcome"] : "?";
    NotOk += Outcome != "ok";
    std::printf("m3serve: %-14s %-11s attempts=%s level=%s", Job.c_str(),
                Outcome.c_str(), M.count("attempt") ? M["attempt"].c_str() : "?",
                M.count("degrade") ? M["degrade"].c_str() : "?");
    if (M.count("result"))
      std::printf(" Main()=%s", M["result"].c_str());
    std::printf("\n");
  }
  ::close(Fd);
  std::printf("m3serve: %zu job%s settled, %u not ok\n", Names.size(),
              Names.size() == 1 ? "" : "s", NotOk);
  return Opts.Strict && NotOk ? 1 : 0;
}

int runQuery(const std::string &SocketPath, const char *Kind) {
  int Fd = net::connectUnix(SocketPath);
  if (Fd < 0) {
    std::fprintf(stderr, "m3serve: cannot connect to '%s': %s\n",
                 SocketPath.c_str(), std::strerror(errno));
    return 3;
  }
  if (!sendLine(Fd, std::string("{\"req\":\"") + Kind + "\"}")) {
    ::close(Fd);
    return 3;
  }
  std::string Buf, Line;
  if (!readLine(Fd, Buf, Line)) {
    std::fprintf(stderr, "m3serve: no response from daemon\n");
    ::close(Fd);
    return 3;
  }
  ::close(Fd);
  std::printf("%s\n", Line.c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  std::string Mode = argv[1];

  // The config file applies first so every flag can override it.
  BatchConfig Cfg;
  for (int I = 2; I < argc; ++I)
    if (std::strncmp(argv[I], "--config=", 9) == 0) {
      std::string Error;
      if (!BatchConfig::loadFile(argv[I] + 9, Cfg, Error)) {
        std::fprintf(stderr, "m3serve: %s\n", Error.c_str());
        return 2;
      }
    }

  ServeOptions SO;
  SubmitOptions Sub;
  jobs::CompileFlags Flags;
  std::string Faults;
  uint64_t MaxQueue = 64, MaxPerClient = 16, Workers = 2, MaxJobs = 0;
  PartitionCacheMode PCache = PartitionCacheMode::Off;
  uint64_t PCacheMB = 0;

  for (int I = 2; I < argc; ++I) {
    std::string A = argv[I];
    auto numArg = [&](const char *Prefix, uint64_t &Slot) {
      size_t N = std::strlen(Prefix);
      if (A.rfind(Prefix, 0) != 0)
        return false;
      char *End = nullptr;
      Slot = std::strtoull(A.c_str() + N, &End, 10);
      return End && !*End;
    };
    uint64_t Tmp = 0;
    if (A.rfind("--config=", 0) == 0)
      ; // applied above
    else if (A.rfind("--socket=", 0) == 0 && A.size() > 9)
      SO.SocketPath = Sub.SocketPath = A.substr(9);
    else if (A.rfind("--jobs=", 0) == 0)
      Sub.JobNames = jobs::splitCommas(A.substr(7));
    else if (numArg("--gen=", Sub.Gen) ||
             numArg("--timeout-ms=", Cfg.TimeoutMs) ||
             numArg("--cpu-seconds=", Cfg.CpuSeconds) ||
             numArg("--memory-mb=", Cfg.MemoryMB) ||
             numArg("--backoff-ms=", Cfg.BackoffMs) ||
             numArg("--analysis-budget=", Cfg.AnalysisBudget) ||
             numArg("--workers=", Workers) ||
             numArg("--max-queue=", MaxQueue) ||
             numArg("--max-queue-per-client=", MaxPerClient) ||
             numArg("--retry-after-ms=", SO.RetryAfterMs) ||
             numArg("--max-jobs-per-worker=", MaxJobs) ||
             numArg("--idle-exit-ms=", SO.IdleExitMs))
      ;
    else if (numArg("--retries=", Tmp) && Tmp)
      Cfg.Retries = static_cast<unsigned>(Tmp);
    else if (numArg("--max-errors=", Tmp))
      Cfg.MaxErrors = static_cast<unsigned>(Tmp);
    else if (numArg("--max-resubmits=", Tmp))
      Sub.MaxResubmits = static_cast<unsigned>(Tmp);
    else if (A.rfind("--journal=", 0) == 0 && A.size() > 10)
      SO.JournalPath = A.substr(10);
    else if (A == "--journal-fsync")
      SO.JournalFsync = true;
    else if (A.rfind("--faults=", 0) == 0)
      Faults = A.substr(9);
    else if (A.rfind("--trace=", 0) == 0 && A.size() > 8)
      SO.TracePath = A.substr(8);
    else if (A.rfind("--level=", 0) == 0) {
      std::string L = A.substr(8);
      if (L != "typedecl" && L != "fieldtypedecl" && L != "smfieldtyperefs")
        return usage();
      Cfg.Level = L;
    } else if (A == "--pipeline")
      Flags.Pipeline = true;
    else if (A == "--pre")
      Flags.PRE = true;
    else if (A == "--verify-analyses")
      Flags.VerifyAnalyses = true;
    else if (A == "--parallel-opt")
      Flags.ParallelOpt = ThreadPool::defaultThreads();
    else if (A.rfind("--parallel-opt=", 0) == 0) {
      char *End = nullptr;
      unsigned long N = std::strtoul(A.c_str() + 15, &End, 10);
      if (!End || *End || N == 0)
        return usage();
      Flags.ParallelOpt = static_cast<unsigned>(N);
    } else if (A.rfind("--partition-cache=", 0) == 0) {
      if (!parsePartitionCacheMode(A.substr(18), PCache))
        return usage();
      if (PCache == PartitionCacheMode::Shared) {
        // Shared mode is the batch driver's fork-per-job publication
        // protocol; the daemon's warm workers amortize through their
        // own in-process LRU instead.
        std::fprintf(stderr,
                     "m3serve: --partition-cache=shared is m3batch-only; "
                     "warm workers use --partition-cache=proc\n");
        return 2;
      }
    } else if (numArg("--partition-cache-mb=", PCacheMB))
      ;
    else if (A == "--strict")
      Sub.Strict = true;
    else if (A == "--verbose")
      SO.Verbose = Sub.Verbose = true;
    else
      return usage();
  }
  if (SO.SocketPath.empty()) {
    std::fprintf(stderr, "m3serve: --socket=PATH is required\n");
    return 2;
  }

  {
    // Arm the fault schedule (chaos drills only); the env form crosses
    // into the warm workers the daemon forks.
    std::string FaultError;
    fault::FaultInjector &FI = fault::FaultInjector::instance();
    bool ArmOk = Faults.empty() ? FI.armFromEnv(FaultError)
                                : FI.arm(Faults, FaultError);
    if (!ArmOk) {
      std::fprintf(stderr, "m3serve: %s\n", FaultError.c_str());
      return 2;
    }
  }

  if (Mode == "submit")
    return runSubmit(Sub);
  if (Mode == "health" || Mode == "stats")
    return runQuery(SO.SocketPath, Mode.c_str());
  if (Mode != "serve")
    return usage();

  SO.Workers = static_cast<unsigned>(Workers);
  SO.MaxQueue = static_cast<unsigned>(MaxQueue);
  SO.MaxQueuePerClient = static_cast<unsigned>(MaxPerClient);
  SO.MaxJobsPerWorker = static_cast<unsigned>(MaxJobs);
  SO.Limits.WallMs = Cfg.TimeoutMs;
  SO.Limits.CpuSeconds = Cfg.CpuSeconds;
  SO.Limits.MemoryMB = Cfg.MemoryMB;
  SO.Retry.MaxAttempts = Cfg.Retries;
  SO.Retry.BackoffBaseMs = Cfg.BackoffMs;
  SO.Retry.BackoffCapMs = Cfg.BackoffCapMs;

  // Configure before the daemon forks its warm workers: each worker
  // inherits the mode and keeps its own in-process LRU alive across
  // re-sandboxed jobs (the per-job registry resets leave it alone).
  // Jobs with a finite --analysis-budget bypass the cache.
  PartitionCacheRuntime::instance().configure(PCache, PCacheMB << 20);

  std::string Error;
  int RC = runServe(SO, makeServeJobFn(Cfg, Flags), Error);
  if (RC != 0)
    std::fprintf(stderr, "m3serve: %s\n", Error.c_str());
  return RC;
}
