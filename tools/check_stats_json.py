#!/usr/bin/env python3
"""Schema check for the bench harness --json output.

Runs a bench binary (default: table6_rle_static) with --json, then
validates the report:

  * top-level keys bench / schema_version / complete / records / stats /
    timings are present and well-typed;
  * no null anywhere in records, stats or timings (the JSON writer turns
    NaN/inf into null, so a null here means a metric went non-finite);
  * every record carries a workload name plus at least one metric;
  * stats keys look like "group.name" with integer values;
  * metrics carries the histogram registry (group.name keys, ordered
    quantiles, bucket counts summing to the sample count) and the
    oracle latency histogram actually sampled queries;
  * the fifteen analysis-cache counters (computed / cache-hits /
    invalidated for dominators, loops, callgraph, modref, aliasclasses)
    are present;
  * the alias-class engine counters (engine.*) and the oracle memo
    eviction counter are present;
  * timing nodes carry name / seconds / invocations / children.

For table6_rle_static it additionally cross-checks the JSON records
against the stdout table: the three per-level RLE counts must match the
printed rows exactly, and RLE must have computed at least one dominator
tree. For bench_pipeline every record must show analyses both computed
and served from the cache, and the pipeline.parallel-* counters
(threads used, functions scheduled, barriers joined) must show that the
parallel-schedule correctness arm ran. For bench_queries every record
must show the engine arrangement issuing at most half the baseline's
oracle queries,
and the engine must actually have interned locations, built partitions
and answered queries on its fast path.

Usage: check_stats_json.py <path-to-bench-binary>
Exit status 0 on success, 1 on any violation.
"""

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

errors = []

ANALYSIS_COUNTERS = [
    f"analysis.{kind}-{suffix}"
    for kind in ("dominators", "loops", "callgraph", "modref",
                 "aliasclasses")
    for suffix in ("computed", "cache-hits", "invalidated")
]

ENGINE_COUNTERS = [
    "engine.locs-interned",
    "engine.partitions-built",
    "engine.classes-built",
    "engine.build-queries",
    "engine.fast-answers",
    "engine.slow-path",
    "engine.fallback-queries",
    "engine.bulk-ops",
    "engine.partition-cache-hit",
    "engine.partition-cache-miss",
    "engine.partition-cache-evict",
    "engine.partition-cache-bytes",
    "oracle.memo-evictions",
]


def fail(msg):
    errors.append(msg)


def check_no_null(value, where):
    if value is None:
        fail(f"null value at {where} (NaN or inf in a metric?)")
    elif isinstance(value, dict):
        for key, item in value.items():
            check_no_null(item, f"{where}.{key}")
    elif isinstance(value, list):
        for index, item in enumerate(value):
            check_no_null(item, f"{where}[{index}]")
    elif isinstance(value, float) and value != value:
        fail(f"NaN at {where}")


def check_timing_node(node, where):
    for key, kind in (("name", str), ("seconds", (int, float)),
                      ("invocations", int), ("children", list)):
        if key not in node:
            fail(f"timing node {where} missing '{key}'")
        elif not isinstance(node[key], kind):
            fail(f"timing node {where}.{key} has type "
                 f"{type(node[key]).__name__}")
    for index, child in enumerate(node.get("children", [])):
        check_timing_node(child, f"{where}.children[{index}]")


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    binary = Path(sys.argv[1])

    with tempfile.TemporaryDirectory() as tmp:
        out_path = Path(tmp) / "report.json"
        proc = subprocess.run([str(binary), "--json", str(out_path)],
                              capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            print(f"{binary.name} exited {proc.returncode}:\n{proc.stderr}",
                  file=sys.stderr)
            return 1
        if not out_path.exists():
            print(f"{binary.name} wrote no JSON to {out_path}",
                  file=sys.stderr)
            return 1
        try:
            report = json.loads(out_path.read_text())
        except json.JSONDecodeError as exc:
            print(f"invalid JSON: {exc}", file=sys.stderr)
            return 1
        stdout = proc.stdout

    for key, kind in (("bench", str), ("schema_version", int),
                      ("complete", bool), ("records", list),
                      ("stats", dict), ("metrics", dict),
                      ("timings", list)):
        if key not in report:
            fail(f"missing top-level key '{key}'")
        elif not isinstance(report[key], kind):
            fail(f"top-level '{key}' has type {type(report[key]).__name__},"
                 f" expected {kind.__name__}")

    if report.get("schema_version") != 1:
        fail(f"unknown schema_version {report.get('schema_version')!r}")
    if report.get("complete") is not True:
        fail("report is marked incomplete (a run aborted via fatal())")

    records = report.get("records", [])
    if not records:
        fail("records array is empty")
    for index, record in enumerate(records):
        where = f"records[{index}]"
        if not isinstance(record, dict):
            fail(f"{where} is not an object")
            continue
        if not isinstance(record.get("workload"), str):
            fail(f"{where} has no workload name")
        if len(record) < 2:
            fail(f"{where} carries no metrics")
        check_no_null(record, where)

    stats = report.get("stats", {})
    for key, value in stats.items():
        # group.name, where the name may itself be dotted (the fault
        # injector's fault.injected.<point> counters name points like
        # journal.append).
        if not re.fullmatch(r"[a-z0-9-]+(\.[a-z0-9-]+)+", key):
            fail(f"stats key '{key}' does not match group.name")
        if not isinstance(value, int) or value < 0:
            fail(f"stats['{key}'] = {value!r} is not a non-negative int")
    for key in ANALYSIS_COUNTERS:
        if key not in stats:
            fail(f"stats is missing the analysis-cache counter '{key}'")
    for key in ENGINE_COUNTERS:
        if key not in stats:
            fail(f"stats is missing the query-engine counter '{key}'")

    metrics = report.get("metrics", {})
    histograms = metrics.get("histograms", {})
    if not isinstance(histograms, dict):
        fail("metrics.histograms is not an object")
        histograms = {}
    if not isinstance(metrics.get("gauges"), dict):
        fail("metrics.gauges is not an object")
    for key, hist in histograms.items():
        where = f"metrics.histograms['{key}']"
        if not re.fullmatch(r"[a-z0-9-]+\.[a-z0-9-]+", key):
            fail(f"histogram key '{key}' does not match group.name")
        if not isinstance(hist, dict):
            fail(f"{where} is not an object")
            continue
        for field in ("count", "sum", "min", "max", "p50", "p90", "p99"):
            value = hist.get(field)
            if not isinstance(value, int) or value < 0:
                fail(f"{where}.{field} = {value!r} is not a "
                     f"non-negative int")
        if not isinstance(hist.get("unit"), str):
            fail(f"{where}.unit is not a string")
        buckets = hist.get("buckets")
        if not isinstance(buckets, list) or not all(
                isinstance(b, int) and b >= 0 for b in buckets):
            fail(f"{where}.buckets is not a list of counts")
        elif sum(buckets) != hist.get("count"):
            fail(f"{where}: buckets sum to {sum(buckets)}, "
                 f"count is {hist.get('count')}")
        if isinstance(hist.get("count"), int) and hist["count"] > 0:
            if not (hist.get("min", 0) <= hist.get("p50", 0)
                    <= hist.get("p90", 0) <= hist.get("p99", 0)
                    <= hist.get("max", 0)):
                fail(f"{where}: quantiles out of order")
    # Every bench in this suite drives RLE through the oracle, so the
    # query-latency histogram must have sampled something.
    if histograms.get("oracle.query-ns", {}).get("count", 0) < 1:
        fail("metrics.histograms['oracle.query-ns'] sampled no queries")

    for index, node in enumerate(report.get("timings", [])):
        check_timing_node(node, f"timings[{index}]")
    check_no_null(report.get("timings", []), "timings")

    # table6: the JSON must mirror the printed table row for row.
    if report.get("bench") == "table6_rle_static":
        table = {}
        for line in stdout.splitlines():
            match = re.match(
                r"^(\S+)\s+\|\s+(\d+)\s+\|\s+(\d+)\s+\|\s+(\d+)\s*$", line)
            if match:
                table[match.group(1)] = tuple(
                    int(match.group(i)) for i in (2, 3, 4))
        if not table:
            fail("could not parse any table rows from stdout")
        json_rows = {
            record["workload"]: (record.get("rle_removed_typedecl"),
                                 record.get("rle_removed_fieldtypedecl"),
                                 record.get("rle_removed_smfieldtyperefs"))
            for record in records if isinstance(record, dict)
        }
        if table != json_rows:
            fail(f"stdout table {table} != JSON records {json_rows}")
        if stats.get("analysis.dominators-computed", 0) < 1:
            fail("RLE ran but analysis.dominators-computed is 0")

    # bench_pipeline: the cached arrangement must actually cache, and
    # the parallel-schedule correctness arm must have exercised the
    # worker pool (threads used, functions scheduled, barrier waits).
    if report.get("bench") == "bench_pipeline":
        for record in records:
            if not isinstance(record, dict):
                continue
            name = record.get("workload")
            if not record.get("analysis_computed", 0) > 0:
                fail(f"{name}: cached run computed no analyses")
            if not record.get("analysis_cache_hits", 0) > 0:
                fail(f"{name}: cached run had no analysis cache hits")
        for key in ("pipeline.parallel-threads",
                    "pipeline.parallel-functions",
                    "pipeline.parallel-barriers"):
            if stats.get(key, 0) < 1:
                fail(f"bench_pipeline ran a parallel arm but {key} is 0")
        if stats.get("pipeline.parallel-threads", 0) < 2:
            fail("pipeline.parallel-threads below the 2-worker arm width")

    # bench_queries: the engine must demonstrably carry the query load.
    if report.get("bench") == "bench_queries":
        for record in records:
            if not isinstance(record, dict):
                continue
            name = record.get("workload")
            base = record.get("queries_baseline", 0)
            engine = record.get("queries_engine", 0)
            if base < 2 * engine:
                fail(f"{name}: engine saved less than half the oracle "
                     f"queries ({base} vs {engine})")
        for key in ("engine.locs-interned", "engine.partitions-built",
                    "engine.classes-built", "engine.build-queries",
                    "engine.fast-answers"):
            if stats.get(key, 0) < 1:
                fail(f"bench_queries ran but {key} is 0")

    if errors:
        for message in errors:
            print(f"check_stats_json: {message}", file=sys.stderr)
        return 1
    print(f"check_stats_json: {binary.name}: "
          f"{len(records)} records, {len(report['stats'])} counters, OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
