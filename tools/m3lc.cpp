//===- m3lc.cpp - M3L compiler driver -------------------------------------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Command-line driver over the whole pipeline:
//
//   m3lc run [opts] <file|workload>      compile, optimize, execute Main
//   m3lc check <file|workload>           parse and typecheck only
//   m3lc dump-ir [opts] <file|workload>  print the (optimized) IR
//   m3lc census <file|workload>          Table 5 alias census
//   m3lc emit-workload <name>            print a bundled benchmark source
//   m3lc list                            list bundled benchmarks
//
// Options: --level=typedecl|fieldtypedecl|smfieldtyperefs (default last)
//          --open        open-world TBAA (Section 4)
//          --no-rle      skip redundant load elimination
//          --pipeline    devirtualize + inline + copy-propagate first
//          --pre         partial redundancy elimination after RLE
//          --parallel-opt[=N] run per-function pass chains on N worker
//                        threads between module-pass barriers (default
//                        N: hardware concurrency); output is
//                        bit-identical to the sequential pipeline
//          --verify-each re-verify the IR after every pass; a failure
//                        names the pass + function and exits 3
//          --verify-analyses recompute each cached analysis fresh on
//                        cache hits and diff against the cache; a stale
//                        result names the pass and exits 3
//          --max-errors=N      stop recording diagnostics after N (default
//                              64; 0 = unlimited)
//          --analysis-budget=N per-phase analysis step budget; exhaustion
//                              degrades the oracle instead of aborting
//          --partition-cache=off|proc
//                        reuse alias partitions across modules whose type
//                        tables share a fingerprint (default off; a finite
//                        --analysis-budget bypasses the cache because a
//                        degraded oracle's partitions are budget-dependent)
//          --partition-cache-mb=N cap the partition cache at N MiB
//          --stats       print execution counters, simulated cycles and
//                        the registered statistics table
//          --time-passes print the hierarchical pass timing report
//          --trace=f     write a Chrome trace-event JSON timeline of the
//                        compile/optimize/execute phases to f
//          --remarks[=f] print optimization remarks (to file f if given)
//
// Exit codes: 0 success; 1 the program was rejected (diagnostics) or
// trapped; 2 usage error; 3 internal error (verifier failure or
// unexpected exception -- the active phase is printed).
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisManager.h"
#include "core/AliasCensus.h"
#include "core/AliasOracle.h"
#include "core/InstrumentedOracle.h"
#include "core/PartitionCache.h"
#include "core/TBAAContext.h"
#include "exec/VM.h"
#include "ir/Pipeline.h"
#include "lang/ASTPrinter.h"
#include "opt/PassPipeline.h"
#include "sim/CacheSim.h"
#include "support/Budget.h"
#include "support/Metrics.h"
#include "support/Remarks.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Timing.h"
#include "support/Trace.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace tbaa;

namespace {

struct Options {
  std::string Command = "run";
  std::string Target;
  AliasLevel Level = AliasLevel::SMFieldTypeRefs;
  bool OpenWorld = false;
  bool ApplyRLE = true;
  bool Pipeline = false;
  bool PRE = false;
  bool VerifyEach = false;
  bool VerifyAnalyses = false;
  unsigned ParallelOpt = 0; ///< 0: sequential pipeline.
  unsigned MaxErrors = 64;
  uint64_t AnalysisBudget = 0; ///< 0: unlimited.
  bool Stats = false;
  bool TimePasses = false;
  std::string TracePath; ///< Empty: tracing off.
  PartitionCacheMode PartitionCache = PartitionCacheMode::Off;
  uint64_t PartitionCacheMB = 0; ///< 0: default cap.
  bool Remarks = false;
  std::string RemarksFile; ///< Empty: remarks go to stdout.
};

/// Exit codes (documented in the file header).
enum ExitCode : int {
  ExitSuccess = 0,
  ExitDiagnostics = 1,
  ExitUsage = 2,
  ExitInternalError = 3,
};

int usage() {
  std::fprintf(
      stderr,
      "usage: m3lc <run|check|dump-ir|dump-ast|census|emit-workload|list>\n"
      "            [--level=typedecl|fieldtypedecl|smfieldtyperefs]\n"
      "            [--open] [--no-rle] [--pipeline] [--pre] [--verify-each]\n"
      "            [--verify-analyses] [--parallel-opt[=N]]\n"
      "            [--max-errors=N] [--analysis-budget=N] [--stats]\n"
      "            [--partition-cache=off|proc] [--partition-cache-mb=N]\n"
      "            [--time-passes] [--trace=file] [--remarks[=file]]\n"
      "            <file.m3l | workload-name>\n"
      "exit codes: 0 success, 1 diagnostics/trap, 2 usage, 3 internal "
      "error\n");
  return ExitUsage;
}

/// Internal-error report: what broke and which phase was active, so a
/// crash in a 40-pass fuzz pipeline is attributable without a debugger.
int internalError(const std::string &What) {
  std::string Phase = TimerRegistry::instance().currentPhase();
  std::fprintf(stderr, "m3lc: internal error: %s\n", What.c_str());
  std::fprintf(stderr, "m3lc: active phase: %s\n",
               Phase.empty() ? "<none>" : Phase.c_str());
  return ExitInternalError;
}

std::string loadSource(const std::string &Target) {
  if (const WorkloadInfo *W = findWorkload(Target))
    return W->Source;
  std::ifstream In(Target);
  if (In) {
    std::ostringstream SS;
    SS << In.rdbuf();
    return SS.str();
  }
  return {};
}

int run(const Options &Opts, DiagnosticEngine &Diags) {
  std::string Source = loadSource(Opts.Target);
  if (Source.empty()) {
    std::fprintf(stderr, "m3lc: cannot read '%s' (not a file or bundled "
                         "workload; try 'm3lc list')\n",
                 Opts.Target.c_str());
    return ExitDiagnostics;
  }

  BudgetRegistry::instance().setAllLimits(Opts.AnalysisBudget);
  Diags.setMaxDiagnostics(Opts.MaxErrors);
  Compilation C = compileSource(Source, Diags);
  if (!C.ok()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return ExitDiagnostics;
  }
  if (Opts.Command == "dump-ast") {
    std::fputs(printModule(C.ast(), C.types()).c_str(), stdout);
    return ExitSuccess;
  }
  if (Opts.Command == "check") {
    std::printf("%s: OK (%u source lines, %zu types, %zu functions)\n",
                Opts.Target.c_str(), C.ast().SourceLines,
                C.types().size(), C.IR.Functions.size());
    return ExitSuccess;
  }

  // The one construction path every driver shares: the manager owns the
  // context and the oracle (decorated with the memo cache that makes RLE
  // cheaper and the degradation ladder that trades precision for time
  // when --analysis-budget is set), and hands out cached call graph /
  // mod-ref / dominators / loops to the passes.
  AnalysisManager AM(C.ast(), C.types(),
                     {.Level = Opts.Level,
                      .OpenWorld = Opts.OpenWorld,
                      .Degrading = true,
                      .VerifyAnalyses = Opts.VerifyAnalyses});

  if (Opts.Command == "census") {
    // All three rows share one interned-location table; each level adds
    // its partition to the same engine, so the census is verdict-matrix
    // arithmetic instead of O(refs^2) oracle queries per row.
    AM.bind(C.IR);
    const AliasClassEngine *ACE = AM.aliasClasses();
    std::printf("%-18s %10s %10s %12s\n", "analysis", "local", "global",
                "references");
    for (AliasLevel L : {AliasLevel::TypeDecl, AliasLevel::FieldTypeDecl,
                         AliasLevel::SMFieldTypeRefs}) {
      auto O = makeAliasOracle(AM.context(), L);
      CensusResult R = ACE ? countAliasPairs(C.IR, *ACE, *O)
                           : countAliasPairs(C.IR, *O);
      std::printf("%-18s %10llu %10llu %12llu\n", O->name(),
                  static_cast<unsigned long long>(R.LocalPairs),
                  static_cast<unsigned long long>(R.GlobalPairs),
                  static_cast<unsigned long long>(R.References));
    }
    return ExitSuccess;
  }

  PipelineOptions PO;
  PO.Devirt = PO.Inline = PO.CopyProp = Opts.Pipeline;
  PO.RLE = Opts.ApplyRLE;
  PO.PRE = Opts.PRE;
  PO.VerifyEach = Opts.VerifyEach;
  PO.VerifyAnalyses = Opts.VerifyAnalyses;
  PO.ParallelThreads = Opts.ParallelOpt;
  OptPipeline Pipeline(AM, PO);
  if (PipelineFailure F = Pipeline.run(C.IR); F.failed())
    return internalError("IR verification failed after pass '" + F.Pass +
                         "' in function '" + F.Function + "':\n" + F.Error);
  const PipelineStats &PS = Pipeline.stats();

  if (Opts.Command == "dump-ir") {
    std::fputs(C.IR.dump().c_str(), stdout);
    return ExitSuccess;
  }

  // run
  TimingSimulator Timing;
  VM Machine(C.IR);
  Machine.addMonitor(&Timing);
  if (!Machine.runInit()) {
    std::fprintf(stderr, "m3lc: %s\n", Machine.trapMessage().c_str());
    return ExitDiagnostics;
  }
  std::optional<int64_t> R = Machine.callFunction("Main");
  if (!R) {
    std::fprintf(stderr, "m3lc: %s\n",
                 Machine.trapped() ? Machine.trapMessage().c_str()
                                   : "program has no Main(): INTEGER");
    return ExitDiagnostics;
  }
  std::printf("Main() = %lld\n", static_cast<long long>(*R));
  if (Opts.Stats) {
    const ExecStats &S = Machine.stats();
    InstrumentedOracle *Oracle = AM.instrumented();
    std::printf("analysis:         %s%s\n", Oracle->name(),
                Opts.OpenWorld ? " (open world)" : "");
    if (Opts.Pipeline)
      std::printf("pipeline:         %u methods resolved, %u calls "
                  "inlined\n",
                  PS.MethodsResolved, PS.CallsInlined);
    if (Opts.ApplyRLE)
      std::printf("RLE:              %u hoisted, %u replaced\n",
                  PS.RLE.Hoisted, PS.RLE.Replaced);
    if (Opts.PRE)
      std::printf("PRE:              %u inserted, %u replaced\n",
                  PS.PRE.Inserted, PS.PRE.Replaced);
    if (Opts.ApplyRLE || Opts.Pipeline || Opts.PRE) {
      const AnalysisManager::CacheStats &AC = PS.Analyses;
      auto Line = [](const char *Kind,
                     const AnalysisManager::KindCounters &K) {
        std::printf("  %-15s %llu computed, %llu cache hits, %llu "
                    "invalidated\n",
                    Kind, static_cast<unsigned long long>(K.Computes),
                    static_cast<unsigned long long>(K.Hits),
                    static_cast<unsigned long long>(K.Invalidations));
      };
      std::printf("analysis cache:   %llu computed, %llu cache hits, %llu "
                  "invalidated\n",
                  static_cast<unsigned long long>(AC.totalComputes()),
                  static_cast<unsigned long long>(AC.totalHits()),
                  static_cast<unsigned long long>(AC.totalInvalidations()));
      Line("dominators", AC.Dominators);
      Line("loops", AC.Loops);
      Line("call graph", AC.CallGraph);
      Line("mod-ref", AC.ModRef);
    }
    std::printf("micro-ops:        %llu\n",
                static_cast<unsigned long long>(S.Ops));
    std::printf("heap loads:       %llu (%.1f%%)\n",
                static_cast<unsigned long long>(S.HeapLoads),
                S.heapLoadPercent());
    std::printf("other loads:      %llu (%.1f%%)\n",
                static_cast<unsigned long long>(S.OtherLoads),
                S.otherLoadPercent());
    std::printf("simulated cycles: %llu (cache hits %llu, misses %llu)\n",
                static_cast<unsigned long long>(Timing.cycles(S)),
                static_cast<unsigned long long>(Timing.cache().hits()),
                static_cast<unsigned long long>(Timing.cache().misses()));
    const OracleStats &OS = Oracle->stats();
    std::printf("alias queries:    %llu path, %llu absloc "
                "(%llu may-alias, %llu no-alias)\n",
                static_cast<unsigned long long>(OS.PathQueries),
                static_cast<unsigned long long>(OS.AbsQueries),
                static_cast<unsigned long long>(OS.MayAlias),
                static_cast<unsigned long long>(OS.NoAlias));
    std::printf("oracle cache:     %llu hits (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(OS.CacheHits),
                OS.cacheHitPercent());
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  Options Opts;
  std::vector<std::string> Positional;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--open")
      Opts.OpenWorld = true;
    else if (A == "--no-rle")
      Opts.ApplyRLE = false;
    else if (A == "--pipeline")
      Opts.Pipeline = true;
    else if (A == "--pre")
      Opts.PRE = true;
    else if (A == "--verify-each")
      Opts.VerifyEach = true;
    else if (A == "--verify-analyses")
      Opts.VerifyAnalyses = true;
    else if (A == "--parallel-opt")
      Opts.ParallelOpt = ThreadPool::defaultThreads();
    else if (A.rfind("--parallel-opt=", 0) == 0) {
      char *End = nullptr;
      unsigned long N = std::strtoul(A.c_str() + 15, &End, 10);
      if (!End || *End || N == 0)
        return usage();
      Opts.ParallelOpt = static_cast<unsigned>(N);
    } else if (A.rfind("--max-errors=", 0) == 0) {
      char *End = nullptr;
      unsigned long N = std::strtoul(A.c_str() + 13, &End, 10);
      if (!End || *End)
        return usage();
      Opts.MaxErrors = static_cast<unsigned>(N);
    } else if (A.rfind("--analysis-budget=", 0) == 0) {
      char *End = nullptr;
      unsigned long long N = std::strtoull(A.c_str() + 18, &End, 10);
      if (!End || *End)
        return usage();
      Opts.AnalysisBudget = N;
    } else if (A.rfind("--partition-cache=", 0) == 0) {
      PartitionCacheMode M;
      if (!parsePartitionCacheMode(A.substr(18), M))
        return usage();
      if (M == PartitionCacheMode::Shared) {
        // Shared mode is m3batch's fork-per-job publication protocol;
        // a single-process compile reuses partitions via 'proc'.
        std::fprintf(stderr, "m3lc: --partition-cache=shared is "
                             "m3batch-only; use --partition-cache=proc\n");
        return ExitUsage;
      }
      Opts.PartitionCache = M;
    } else if (A.rfind("--partition-cache-mb=", 0) == 0) {
      char *End = nullptr;
      unsigned long long N = std::strtoull(A.c_str() + 21, &End, 10);
      if (!End || *End)
        return usage();
      Opts.PartitionCacheMB = N;
    } else if (A == "--stats")
      Opts.Stats = true;
    else if (A == "--time-passes")
      Opts.TimePasses = true;
    else if (A.rfind("--trace=", 0) == 0) {
      Opts.TracePath = A.substr(8);
      if (Opts.TracePath.empty())
        return usage();
    } else if (A == "--remarks")
      Opts.Remarks = true;
    else if (A.rfind("--remarks=", 0) == 0) {
      Opts.Remarks = true;
      Opts.RemarksFile = A.substr(10);
      if (Opts.RemarksFile.empty())
        return usage();
    } else if (A.rfind("--level=", 0) == 0) {
      std::string L = A.substr(8);
      if (L == "typedecl")
        Opts.Level = AliasLevel::TypeDecl;
      else if (L == "fieldtypedecl")
        Opts.Level = AliasLevel::FieldTypeDecl;
      else if (L == "smfieldtyperefs")
        Opts.Level = AliasLevel::SMFieldTypeRefs;
      else
        return usage();
    } else if (A.rfind("--", 0) == 0) {
      return usage();
    } else {
      Positional.push_back(A);
    }
  }
  if (Positional.empty())
    return usage();
  Opts.Command = Positional[0];
  if (Opts.Command == "list") {
    for (const WorkloadInfo &W : allWorkloads())
      std::printf("%-14s %s%s\n", W.Name, W.Description,
                  W.Interactive ? " (static-only in the paper)" : "");
    return 0;
  }
  if (Positional.size() != 2)
    return usage();
  Opts.Target = Positional[1];
  if (Opts.Command == "emit-workload") {
    const WorkloadInfo *W = findWorkload(Opts.Target);
    if (!W) {
      std::fprintf(stderr, "m3lc: unknown workload '%s'\n",
                   Opts.Target.c_str());
      return 1;
    }
    std::fputs(W->Source, stdout);
    return 0;
  }
  if (Opts.Command != "run" && Opts.Command != "check" &&
      Opts.Command != "dump-ir" && Opts.Command != "dump-ast" &&
      Opts.Command != "census")
    return usage();

  TimerRegistry::instance().setEnabled(Opts.TimePasses);
  if (!Opts.TracePath.empty()) {
    TraceRecorder::instance().setEnabled(true);
    TraceRecorder::instance().processName("m3lc");
  }
  // Metrics want a wall clock per oracle query; only pay for it when a
  // report will consume the histograms.
  MetricsRegistry::instance().setEnabled(Opts.Stats || !Opts.TracePath.empty());
  PartitionCacheRuntime::instance().configure(Opts.PartitionCache,
                                              Opts.PartitionCacheMB << 20);
  RemarkEngine::instance().setEnabled(Opts.Remarks);
  // The engine lives out here so diagnostics that were pending when an
  // exception unwound run() still reach the user below -- "internal
  // error" with the recorded errors swallowed is untriageable.
  DiagnosticEngine Diags;
  int RC;
  try {
    RC = run(Opts, Diags);
  } catch (const std::exception &E) {
    RC = internalError(E.what());
  } catch (...) {
    RC = internalError("unknown exception");
  }
  if (RC == ExitInternalError && Diags.errorCount()) {
    std::fprintf(stderr, "m3lc: %u diagnostic%s pending at the point of "
                         "failure:\n",
                 Diags.errorCount(), Diags.errorCount() == 1 ? "" : "s");
    std::fputs(Diags.str().c_str(), stderr);
  }

  // Reports print after the single run() exit so every command and error
  // path that got far enough still shows what it measured.
  if (Opts.Remarks) {
    RemarkEngine &RE = RemarkEngine::instance();
    if (Opts.RemarksFile.empty()) {
      std::fputs(RE.render().c_str(), stdout);
    } else {
      std::ofstream Out(Opts.RemarksFile);
      if (!Out) {
        std::fprintf(stderr, "m3lc: cannot write remarks to '%s'\n",
                     Opts.RemarksFile.c_str());
        if (RC == 0)
          RC = 1;
      } else {
        Out << RE.render();
      }
    }
  }
  if (Opts.TimePasses)
    std::fputs(TimerRegistry::instance().report().c_str(), stdout);
  if (!Opts.TracePath.empty()) {
    std::string Err;
    if (!TraceRecorder::instance().writeChromeJSON(Opts.TracePath, Err)) {
      std::fprintf(stderr, "m3lc: %s\n", Err.c_str());
      if (RC == 0)
        RC = ExitInternalError;
    }
  }
  if (Opts.Stats && StatsRegistry::instance().anyNonZero()) {
    std::fputs("\n===--- Statistics ---===\n", stdout);
    std::fputs(StatsRegistry::instance().table().c_str(), stdout);
  }
  if (Opts.Stats && MetricsRegistry::instance().anyNonZero()) {
    std::fputs("\n", stdout);
    std::fputs(MetricsRegistry::instance().table().c_str(), stdout);
  }
  // Everything above must actually reach the terminal/pipe even when a
  // batch parent reads us over a pipe and we exit on the error path.
  std::fflush(stdout);
  std::fflush(stderr);
  return RC;
}
