#!/usr/bin/env python3
"""Schema check for the --trace Chrome trace-event output.

Two modes, one per driver (docs/OBSERVABILITY.md):

  * m3lc: run a full pipeline compile with --trace and validate the
    single-process timeline: every event matches the Chrome trace-event
    schema, B/E spans balance per thread, and the compile / rle /
    vm-run phase spans are all present.

  * m3batch: run the planted robustness scenario (@crash, @hang, clean
    job) with --trace and validate the *merged* multi-process timeline:
    at least two distinct pids (parent + workers), balanced spans even
    for workers that died mid-span (the merge closes them), fork /
    watchdog / retry / journal-append service events, per-worker
    process_name metadata, and monotone jobs-completed counters.

Usage: check_trace_json.py <m3lc|m3batch> <path-to-binary>
Exit status 0 on success, 1 on any violation.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

PHASES = {"B", "E", "X", "i", "C", "M"}

errors = []


def fail(msg):
    errors.append(msg)


def load_trace(path):
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        fail(f"{path.name}: invalid JSON: {exc}")
        return []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path.name}: expected an object with 'traceEvents'")
        return []
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path.name}: 'traceEvents' empty or not a list")
        return []
    for index, event in enumerate(events):
        where = f"{path.name}: event {index}"
        if not isinstance(event, dict):
            fail(f"{where}: not an object")
            return []
        for key, kind in (("name", str), ("ph", str), ("ts", int),
                          ("pid", int), ("tid", int)):
            if not isinstance(event.get(key), kind) or (
                    kind is int and isinstance(event.get(key), bool)):
                fail(f"{where}: bad '{key}': {event.get(key)!r}")
        if event.get("ph") not in PHASES:
            fail(f"{where}: unknown ph {event.get('ph')!r}")
        if event.get("ph") == "X" and (not isinstance(event.get("dur"), int)
                                       or event["dur"] < 0):
            fail(f"{where}: complete event without a duration")
        if "args" in event and not isinstance(event["args"], dict):
            fail(f"{where}: 'args' is not an object")
    return events


def check_balance(path, events):
    """Every B has a matching E on the same (pid, tid), LIFO order.

    Events appear in emission order per process (the merge keeps shard
    order), so a per-thread stack is the ground truth.
    """
    stacks = {}
    for event in events:
        key = (event.get("pid"), event.get("tid"))
        if event.get("ph") == "B":
            stacks.setdefault(key, []).append(event.get("name"))
        elif event.get("ph") == "E":
            stack = stacks.setdefault(key, [])
            if not stack:
                fail(f"{path.name}: pid {key[0]}: 'E' {event.get('name')!r} "
                     f"without an open span")
            elif stack[-1] != event.get("name"):
                fail(f"{path.name}: pid {key[0]}: 'E' {event.get('name')!r} "
                     f"closes open span {stack[-1]!r}")
                stack.pop()
            else:
                stack.pop()
    for (pid, _tid), stack in stacks.items():
        if stack:
            fail(f"{path.name}: pid {pid}: spans left open: {stack}")


def names_by_phase(events, ph):
    return {e["name"] for e in events if e.get("ph") == ph}


def check_m3lc(binary, tmp):
    trace = tmp / "m3lc-trace.json"
    proc = subprocess.run(
        [str(binary), "run", "--pipeline", "--pre", f"--trace={trace}",
         "format"],
        capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"m3lc --trace exited {proc.returncode}:\n{proc.stderr}")
        return
    if not trace.exists():
        fail(f"m3lc --trace left no file at {trace}")
        return
    events = load_trace(trace)
    if not events:
        return
    check_balance(trace, events)
    spans = names_by_phase(events, "B")
    for name in ("compile", "rle", "vm-run"):
        if name not in spans:
            fail(f"{trace.name}: no '{name}' span (have {sorted(spans)})")
    if len({e["pid"] for e in events}) != 1:
        fail(f"{trace.name}: single-process run reports multiple pids")
    metadata = [e for e in events if e.get("ph") == "M"]
    if not any(e.get("args", {}).get("name") == "m3lc" for e in metadata):
        fail(f"{trace.name}: no process_name metadata for m3lc")


def check_m3batch(binary, tmp):
    trace = tmp / "m3batch-trace.json"
    journal = tmp / "m3batch-trace.jsonl"
    proc = subprocess.run(
        [str(binary), "--jobs=@crash,@hang,format", "--parallel=2",
         "--timeout-ms=2000", "--retries=2", "--backoff-ms=1",
         f"--trace={trace}", f"--journal={journal}"],
        capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"m3batch --trace exited {proc.returncode}:\n{proc.stderr}")
        return
    if not trace.exists():
        fail(f"m3batch --trace left no file at {trace}")
        return
    if (tmp / "m3batch-trace.json.shards").exists():
        fail("shard directory survived a successful merge")
    events = load_trace(trace)
    if not events:
        return
    check_balance(trace, events)

    pids = {e["pid"] for e in events}
    if len(pids) < 2:
        fail(f"{trace.name}: merged trace has {len(pids)} pid(s); want the "
             f"parent plus at least one worker")

    spans = names_by_phase(events, "B") | names_by_phase(events, "X")
    if "batch" not in spans:
        fail(f"{trace.name}: no 'batch' span")
    for name in ("fork", "journal-append"):
        if name not in names_by_phase(events, "X"):
            fail(f"{trace.name}: no '{name}' complete event")
    instants = names_by_phase(events, "i")
    for name in ("watchdog-poll", "watchdog-kill", "retry"):
        if name not in instants:
            fail(f"{trace.name}: no '{name}' instant (have "
                 f"{sorted(instants)})")

    # Worker shards carry their own process_name so Perfetto labels the
    # per-attempt tracks.
    labels = [e.get("args", {}).get("name") for e in events
              if e.get("ph") == "M"]
    if not any(label == "m3batch" for label in labels):
        fail(f"{trace.name}: no parent process_name")
    if not any(label and label.startswith("format a1") for label in labels):
        fail(f"{trace.name}: no worker process_name for format (have "
             f"{labels})")

    counters = [e for e in events if e.get("ph") == "C"
                and e.get("name") == "jobs-completed"]
    if not counters:
        fail(f"{trace.name}: no jobs-completed counter samples")
    values = [c.get("args", {}).get("value") for c in counters]
    if values != sorted(values):
        fail(f"{trace.name}: jobs-completed counter not monotone: {values}")
    if values and values[-1] != 3:
        fail(f"{trace.name}: jobs-completed ends at {values[-1]}, want 3")


def main():
    if len(sys.argv) != 3 or sys.argv[1] not in ("m3lc", "m3batch"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    binary = Path(sys.argv[2])

    with tempfile.TemporaryDirectory() as tmp:
        if sys.argv[1] == "m3lc":
            check_m3lc(binary, Path(tmp))
        else:
            check_m3batch(binary, Path(tmp))

    if errors:
        for message in errors:
            print(f"check_trace_json: {message}", file=sys.stderr)
        return 1
    print(f"check_trace_json: {sys.argv[1]} trace OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
