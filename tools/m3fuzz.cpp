//===- m3fuzz.cpp - Fuzz / differential-test / triage driver --------------===//
//
// Part of the TBAA reproduction of Diwan, McKinley & Moss, PLDI 1998.
//
// Self-checking compilation in a loop (docs/ROBUSTNESS.md): generate
// well-typed programs (and byte-mangled mutants of them), push each
// through compile -> strict verify -> the optimization pipeline under
// --verify-each -> differential execution of unoptimized vs optimized
// IR. Any failure is triaged automatically:
//
//   * the pipeline is re-run prefix by prefix from pristine IR to name
//     the guilty pass (verify-each failures already carry it);
//   * the source is delta-reduced (ddmin over lines) to a minimal
//     program that still reproduces;
//   * a reproducer bundle (input.m3l, reduced.m3l, report.txt) is
//     written under --out.
//
//   m3fuzz [--seeds N] [--mutants M] [--stmts N] [--procs N] [--fuel N]
//          [--budget N] [--timeout-ms N] [--out DIR] [--verify-analyses]
//          [--plant-bug] [--expect-bug]
//
// --timeout-ms runs every candidate in a sandboxed worker process under
// a wall-clock deadline (src/service/): a candidate that hangs outside
// the interpreter's fuel accounting -- a front-end or pipeline infinite
// loop -- is killed by the watchdog and triaged as `hang` instead of
// wedging the whole fuzz session, and a candidate that crashes the
// compiler is triaged as `crash` with the dying phase, instead of
// taking the driver down with it.
//
// --plant-bug inserts a deliberately wrong pass (an RLE-shaped bug: one
// heap integer load replaced with a constant) after rle; --expect-bug
// additionally *requires* the sweep to catch it, bisect it to that pass
// and reduce the reproducer below 30 lines -- the self-test that the
// whole triage loop works.
//
// Exit codes: 0 clean sweep (or, with --expect-bug, the planted bug was
// fully triaged); 1 failures found (or the planted bug escaped); 2 usage
// error.
//
//===----------------------------------------------------------------------===//

#include "core/Degradation.h"
#include "core/TBAAContext.h"
#include "exec/DiffGuard.h"
#include "ir/Pipeline.h"
#include "opt/PassPipeline.h"
#include "service/Journal.h"
#include "service/Worker.h"
#include "support/Budget.h"
#include "support/SafeIO.h"
#include "workloads/Generator.h"
#include "workloads/Mutate.h"

#include <algorithm>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace tbaa;

namespace {

struct Options {
  uint64_t Seeds = 50;
  uint64_t Mutants = 3;
  unsigned Stmts = 60;
  unsigned Procs = 4;
  uint64_t Fuel = 20'000'000;
  uint64_t Budget = 0;
  std::string Out = "m3fuzz-out";
  uint64_t TimeoutMs = 0; ///< 0 = check in-process, no isolation.
  bool VerifyAnalyses = false;
  bool PlantBug = false;
  bool ExpectBug = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: m3fuzz [--seeds N] [--mutants M] [--stmts N] "
               "[--procs N]\n"
               "              [--fuel N] [--budget N] [--timeout-ms N] "
               "[--out DIR]\n"
               "              [--verify-analyses] [--plant-bug] "
               "[--expect-bug]\n"
               "exit codes: 0 clean sweep, 1 failures found, 2 usage "
               "error\n");
  return 2;
}

/// What went wrong with one test case.
enum class FailKind {
  None,
  RejectedSilently, ///< compile failed without a diagnostic
  InputVerify,      ///< the lowered (pre-pipeline) IR is malformed
  PassVerify,       ///< --verify-each flagged a pass
  DiffMismatch,     ///< differential execution diverged
  Hang,             ///< the isolated worker blew its wall-clock deadline
  Crash,            ///< the isolated worker died on a signal
};

const char *failKindName(FailKind K) {
  switch (K) {
  case FailKind::None:
    return "none";
  case FailKind::RejectedSilently:
    return "rejected-without-diagnostic";
  case FailKind::InputVerify:
    return "input-verify";
  case FailKind::PassVerify:
    return "pass-verify";
  case FailKind::DiffMismatch:
    return "differential-mismatch";
  case FailKind::Hang:
    return "hang";
  case FailKind::Crash:
    return "crash";
  }
  return "?";
}

struct CaseResult {
  FailKind Kind = FailKind::None;
  bool Compiled = false;  ///< False: rejected (with diagnostics, if None).
  std::string Detail;     ///< Verifier report / divergence description.
  std::string GuiltyPass; ///< From verify-each or prefix bisection.
};

/// The deliberately wrong pass: replaces the first heap integer load in
/// Main with a constant -- exactly the shape of an unsound RLE
/// replacement. Verifier-clean by construction (the IR stays well
/// formed), so only the differential guard can catch it.
void sabotagePass(IRModule &M) {
  IRFunction *Main = M.findFunction("Main");
  if (!Main || !M.Types)
    return;
  TypeId IntTy = M.Types->canonical(M.Types->integerType());
  for (BasicBlock &B : Main->Blocks)
    for (Instr &I : B.Instrs)
      if (I.Op == Opcode::LoadMem && I.Path.ValueType == IntTy) {
        I.Op = Opcode::ConstOp;
        I.A = Operand::immInt(123456789);
        I.B = Operand::none();
        I.HasPath = false;
        return;
      }
}

/// Runs the full self-checking pipeline over \p Source. \p BisectPass
/// controls whether a differential mismatch is traced to its pass (the
/// reduction predicate skips that for speed).
CaseResult checkOne(const std::string &Source, const Options &Opts,
                    bool BisectPass) {
  CaseResult R;
  DiagnosticEngine Diags;
  Diags.setMaxDiagnostics(64);
  Compilation C = compileSource(Source, Diags);
  if (!C.ok()) {
    if (!Diags.hasErrors()) {
      R.Kind = FailKind::RejectedSilently;
      R.Detail = "compileSource failed with zero diagnostics";
    }
    return R; // A diagnosed rejection is a pass, not a failure.
  }
  R.Compiled = true;
  if (std::string E = C.IR.verify(); !E.empty()) {
    R.Kind = FailKind::InputVerify;
    R.Detail = E;
    R.GuiltyPass = "<lower>";
    return R;
  }

  IRModule Pristine = C.IR;
  BudgetRegistry::instance().setAllLimits(Opts.Budget);
  TBAAContext Ctx(C.ast(), C.types(), {});
  auto Oracle = makeDegradingOracle(Ctx, AliasLevel::SMFieldTypeRefs);
  PipelineOptions PO;
  PO.VerifyEach = true;
  PO.VerifyAnalyses = Opts.VerifyAnalyses;
  auto makePipeline = [&]() {
    auto P = std::make_unique<OptPipeline>(Ctx, *Oracle, PO);
    if (Opts.PlantBug)
      P->insertAfter("rle", "sabotage", sabotagePass);
    return P;
  };

  auto Pipeline = makePipeline();
  if (PipelineFailure F = Pipeline->run(C.IR); F.failed()) {
    R.Kind = FailKind::PassVerify;
    R.Detail = F.Error;
    R.GuiltyPass = F.Pass;
    return R;
  }

  DiffResult D = runDifferential(Pristine, C.IR, Opts.Fuel);
  if (!D.mismatch())
    return R; // Match or Inconclusive (base ran out of fuel).
  R.Kind = FailKind::DiffMismatch;
  R.Detail = D.Detail;

  if (!BisectPass)
    return R;
  // Replay pass prefixes from pristine IR; the first prefix that
  // diverges ends in the guilty pass.
  size_t N = Pipeline->size();
  for (size_t K = 1; K <= N; ++K) {
    IRModule Work = Pristine;
    auto P = makePipeline();
    if (PipelineFailure F = P->runPrefix(Work, K); F.failed()) {
      R.GuiltyPass = F.Pass; // A prefix replay can also break verify.
      return R;
    }
    if (runDifferential(Pristine, Work, Opts.Fuel).mismatch()) {
      R.GuiltyPass = P->name(K - 1);
      return R;
    }
  }
  R.GuiltyPass = "<unreproducible>"; // Full run diverged, prefixes did not.
  return R;
}

/// checkOne in a sandboxed worker (src/service/) when \p TimeoutMs is
/// set: the watchdog kills a candidate that hangs outside the fuel
/// accounting, and a compiler crash becomes a triaged CaseResult instead
/// of killing the driver. The child ships its CaseResult back over the
/// payload pipe as one header line (kind, compiled, field lengths)
/// followed by the raw GuiltyPass and Detail bytes.
CaseResult checkOneIsolated(const std::string &Source, const Options &Opts,
                            bool BisectPass, uint64_t TimeoutMs) {
  if (!TimeoutMs)
    return checkOne(Source, Opts, BisectPass);

  WorkerLimits Limits;
  Limits.WallMs = TimeoutMs;
  WorkerResult WR = runInWorker(
      [&](int Fd) {
        CaseResult R = checkOne(Source, Opts, BisectPass);
        ::dprintf(Fd, "%d %d %zu %zu\n", static_cast<int>(R.Kind),
                  R.Compiled ? 1 : 0, R.GuiltyPass.size(), R.Detail.size());
        safeio::writeAll(Fd, R.GuiltyPass.data(), R.GuiltyPass.size());
        safeio::writeAll(Fd, R.Detail.data(), R.Detail.size());
        return 0;
      },
      Limits);

  CaseResult R;
  if (WR.Status == WorkerStatus::TimedOut) {
    R.Kind = FailKind::Hang;
    R.Detail = "no verdict within " + std::to_string(TimeoutMs) +
               " ms (wall-clock watchdog)";
    return R;
  }
  if (WR.Status == WorkerStatus::Signaled) {
    R.Kind = FailKind::Crash;
    R.Detail = "worker died on signal " + std::to_string(WR.Signal);
    if (!WR.CrashRecord.empty()) {
      R.Detail += "\ncrash record: " + WR.CrashRecord;
      std::map<std::string, std::string> Rec;
      if (parseFlatJSONObject(WR.CrashRecord, Rec) && !Rec["phase"].empty())
        R.GuiltyPass = Rec["phase"]; // The dying phase names the suspect.
    }
    return R;
  }

  // Exited: parse the shipped CaseResult.
  int Kind = 0, Compiled = 0;
  size_t PassLen = 0, DetailLen = 0;
  size_t NL = WR.Payload.find('\n');
  if (WR.ExitCode != 0 || NL == std::string::npos ||
      std::sscanf(WR.Payload.c_str(), "%d %d %zu %zu", &Kind, &Compiled,
                  &PassLen, &DetailLen) != 4 ||
      WR.Payload.size() - NL - 1 < PassLen + DetailLen) {
    R.Kind = FailKind::Crash;
    R.Detail = "worker exited " + std::to_string(WR.ExitCode) +
               " without a verdict";
    return R;
  }
  R.Kind = static_cast<FailKind>(Kind);
  R.Compiled = Compiled != 0;
  R.GuiltyPass = WR.Payload.substr(NL + 1, PassLen);
  R.Detail = WR.Payload.substr(NL + 1 + PassLen, DetailLen);
  return R;
}

std::vector<std::string> splitLines(const std::string &S) {
  std::vector<std::string> Lines;
  std::istringstream In(S);
  std::string L;
  while (std::getline(In, L))
    Lines.push_back(L);
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines,
                      const std::vector<bool> &Keep) {
  std::string S;
  for (size_t I = 0; I != Lines.size(); ++I)
    if (Keep[I]) {
      S += Lines[I];
      S += '\n';
    }
  return S;
}

/// Delta-reduction over source lines: greedily drop spans of live lines
/// (every offset, span sizes from coarse to single lines), repeated to a
/// fixpoint, while the same FailKind still reproduces. Spans at every
/// offset -- rather than ddmin's aligned chunks -- matter here because
/// the irreducible unit is usually a whole PROCEDURE, which sits at an
/// arbitrary offset.
std::string reduceSource(const std::string &Source, FailKind Kind,
                         const Options &Opts) {
  std::vector<std::string> Lines = splitLines(Source);
  std::vector<bool> Keep(Lines.size(), true);
  // Probes for a hang/crash reproduction must stay isolated, but each
  // probe that *doesn't* reproduce a hang costs the full deadline --
  // hundreds of probes at 10 s each is not a reduction, it's a hang of
  // its own. Cap the per-probe deadline well below the sweep's.
  uint64_t ProbeMs =
      Opts.TimeoutMs ? std::min<uint64_t>(Opts.TimeoutMs, 2000) : 0;
  auto stillFails = [&](const std::vector<bool> &K) {
    return checkOneIsolated(joinLines(Lines, K), Opts, /*BisectPass=*/false,
                            ProbeMs)
               .Kind == Kind;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t Span : {32, 16, 8, 4, 3, 2, 1}) {
      // Live line positions under the current Keep mask.
      std::vector<size_t> Live;
      for (size_t I = 0; I != Lines.size(); ++I)
        if (Keep[I])
          Live.push_back(I);
      if (Live.size() <= 1)
        return joinLines(Lines, Keep);
      for (size_t Start = 0; Start + Span <= Live.size();) {
        std::vector<bool> Trial = Keep;
        for (size_t I = 0; I != Span; ++I)
          Trial[Live[Start + I]] = false;
        if (stillFails(Trial)) {
          Keep = Trial;
          Live.erase(Live.begin() + Start, Live.begin() + Start + Span);
          Changed = true;
        } else {
          ++Start;
        }
      }
    }
  }
  return joinLines(Lines, Keep);
}

void writeFile(const std::filesystem::path &P, const std::string &Text) {
  std::ofstream Out(P);
  Out << Text;
}

/// Everything known about one triaged failure, bundled on disk.
void writeBundle(const std::string &CaseName, const std::string &Source,
                 const std::string &Reduced, const CaseResult &R,
                 const Options &Opts) {
  std::filesystem::path Dir = std::filesystem::path(Opts.Out) / CaseName;
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    std::fprintf(stderr, "m3fuzz: cannot create '%s': %s\n",
                 Dir.string().c_str(), EC.message().c_str());
    return;
  }
  writeFile(Dir / "input.m3l", Source);
  writeFile(Dir / "reduced.m3l", Reduced);
  std::ostringstream Report;
  Report << "case:        " << CaseName << "\n"
         << "failure:     " << failKindName(R.Kind) << "\n"
         << "guilty pass: " << (R.GuiltyPass.empty() ? "<none>" : R.GuiltyPass)
         << "\n"
         << "reduced:     " << splitLines(Reduced).size() << " lines (from "
         << splitLines(Source).size() << ")\n\n"
         << "detail:\n"
         << R.Detail << "\n";
  writeFile(Dir / "report.txt", Report.str());
}

struct SweepStats {
  uint64_t Cases = 0;
  uint64_t Compiled = 0;
  uint64_t Rejected = 0;
  uint64_t Failures = 0;
};

} // namespace

int main(int argc, char **argv) {
  Options Opts;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto numArg = [&](const char *Prefix, uint64_t &Slot) {
      size_t N = std::strlen(Prefix);
      if (A.rfind(Prefix, 0) != 0)
        return false;
      char *End = nullptr;
      Slot = std::strtoull(A.c_str() + N, &End, 10);
      return End && !*End;
    };
    uint64_t Tmp = 0;
    if (A == "--plant-bug")
      Opts.PlantBug = true;
    else if (A == "--verify-analyses")
      Opts.VerifyAnalyses = true;
    else if (A == "--expect-bug")
      Opts.PlantBug = Opts.ExpectBug = true;
    else if (numArg("--seeds=", Opts.Seeds) || numArg("--fuel=", Opts.Fuel) ||
             numArg("--mutants=", Opts.Mutants) ||
             numArg("--budget=", Opts.Budget) ||
             numArg("--timeout-ms=", Opts.TimeoutMs))
      ;
    else if (numArg("--stmts=", Tmp))
      Opts.Stmts = static_cast<unsigned>(Tmp);
    else if (numArg("--procs=", Tmp))
      Opts.Procs = static_cast<unsigned>(Tmp);
    else if (A.rfind("--out=", 0) == 0 && A.size() > 6)
      Opts.Out = A.substr(6);
    else
      return usage();
  }

  SweepStats S;
  bool ExpectationMet = false;
  for (uint64_t Seed = 1; Seed <= Opts.Seeds; ++Seed) {
    GeneratorOptions GO;
    GO.Seed = Seed;
    GO.StatementBudget = Opts.Stmts;
    GO.NumProcs = Opts.Procs;
    std::string Base = generateProgram(GO);

    // The pristine program plus byte/structure mutants of it. Mutants
    // mostly probe the front end; the pristine case probes the pipeline.
    std::vector<std::pair<std::string, std::string>> Cases;
    Cases.emplace_back("seed" + std::to_string(Seed), Base);
    for (uint64_t M = 1; M <= Opts.Mutants; ++M) {
      uint64_t MSeed = Seed * 1000003 + M;
      std::string Name = "seed" + std::to_string(Seed) + "-mut" +
                         std::to_string(M);
      Cases.emplace_back(Name, M % 2 ? mutateSource(Base, MSeed)
                                     : mutateBytes(Base, MSeed));
    }

    for (auto &[Name, Source] : Cases) {
      ++S.Cases;
      CaseResult R =
          checkOneIsolated(Source, Opts, /*BisectPass=*/true, Opts.TimeoutMs);
      if (R.Kind == FailKind::None) {
        ++(R.Compiled ? S.Compiled : S.Rejected);
        continue;
      }
      ++S.Failures;
      std::string Reduced = reduceSource(Source, R.Kind, Opts);
      writeBundle(Name, Source, Reduced, R, Opts);
      size_t ReducedLines = splitLines(Reduced).size();
      std::fprintf(stderr,
                   "m3fuzz: %s: %s (pass: %s), reduced to %zu lines -> "
                   "%s/%s\n",
                   Name.c_str(), failKindName(R.Kind),
                   R.GuiltyPass.empty() ? "<none>" : R.GuiltyPass.c_str(),
                   ReducedLines, Opts.Out.c_str(), Name.c_str());
      if (Opts.ExpectBug && R.Kind == FailKind::DiffMismatch &&
          R.GuiltyPass == "sabotage" && ReducedLines < 30) {
        ExpectationMet = true;
        break; // One fully triaged catch is the proof.
      }
    }
    if (ExpectationMet)
      break;
  }

  std::printf("m3fuzz: %llu cases (%llu optimized clean, %llu rejected "
              "with diagnostics, %llu failures)\n",
              static_cast<unsigned long long>(S.Cases),
              static_cast<unsigned long long>(S.Compiled),
              static_cast<unsigned long long>(S.Rejected),
              static_cast<unsigned long long>(S.Failures));
  if (Opts.ExpectBug) {
    if (ExpectationMet) {
      std::printf("m3fuzz: planted bug caught, bisected and reduced\n");
      return 0;
    }
    std::fprintf(stderr, "m3fuzz: planted bug was NOT fully triaged\n");
    return 1;
  }
  return S.Failures ? 1 : 0;
}
