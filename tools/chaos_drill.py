#!/usr/bin/env python3
"""Chaos drill for the batch/serve stack (docs/ROBUSTNESS.md).

Runs one golden batch -- a planted crasher walking the retry ladder
plus a clean compile -- repeatedly under seeded fault schedules
(--faults / TBAA_FAULTS, src/support/FaultInjector.h) and asserts the
recovery invariants the service claims:

  * kill-at-every-append: SIGKILL the driver mid-way through the Nth
    journal append, for every N, resuming after each kill. The batch
    must eventually complete, every torn tail must be repaired (the
    loader warns and truncates), and the settled journal must be
    equivalent to the fault-free run's modulo timing fields.
  * enospc / short-write appends: the driver must surface the append
    failure (exit 3, not silent loss), keep what it had, and resume to
    the same settled journal.
  * EINTR storm: interrupted writes are absorbed; the journal is
    equivalent with zero repairs, and the injector's exit summary
    proves the fault actually fired (no vacuous pass).
  * fsync faults (--journal-fsync): a kill between write and fsync and
    an ENOSPC fsync both recover through the same resume path.
  * seeded determinism: the same probabilistic schedule replays to the
    identical journal and exit code.
  * serve fork exhaustion: a daemon whose every fork fails (EAGAIN)
    stays alive with zero workers, answers health, degrades admission
    to `overloaded` backpressure, and still shuts down cleanly.
  * torn cache publish: with --partition-cache=shared, every partition
    publication torn mid-copy (cache.publish=short) must degrade to
    cache misses and rebuilds -- the settled journal stays equivalent
    to the unfaulted cached run, results included, and the injector's
    summary proves the tear actually happened.

Usage: chaos_drill.py <path-to-m3batch> <path-to-m3serve>
Exit status 0 on success, 1 on any violation.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

JOBS = "@crash,format"
# Timing and checksum fields vary run to run; everything else -- the
# attempt structure, ladder walk, outcomes, scheduled backoffs -- is the
# deterministic story two equivalent journals must agree on.
TIMING_KEYS = {"wall_ms", "cpu_ms", "peak_rss_kb", "minflt", "majflt",
               "crc", "oracle_queries", "oracle_p50_ns", "oracle_p90_ns",
               "oracle_max_ns", "pcache_hit", "pcache_miss"}

errors = []


def fail(msg):
    errors.append(msg)
    print(f"chaos_drill: FAIL: {msg}", file=sys.stderr)


def run_batch(binary, journal, faults=None, resume=False, fsync=False):
    cmd = [str(binary), f"--jobs={JOBS}", "--parallel=1", "--retries=2",
           "--backoff-ms=1", f"--journal={journal}"]
    if resume:
        cmd.append("--resume")
    if fsync:
        cmd.append("--journal-fsync")
    env = dict(os.environ)
    env.pop("TBAA_FAULTS", None)
    if faults:
        env["TBAA_FAULTS"] = faults
    return subprocess.run(cmd, capture_output=True, text=True, env=env,
                          timeout=600)


def normalize(journal):
    out = []
    for line in Path(journal).read_text().splitlines():
        record = json.loads(line)
        out.append(tuple(sorted((k, v) for k, v in record.items()
                                if k not in TIMING_KEYS)))
    return sorted(out)


def check_settled(journal, golden, what):
    try:
        got = normalize(journal)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{what}: settled journal unreadable: {exc}")
        return
    if got != golden:
        fail(f"{what}: settled journal differs from the fault-free run:\n"
             f"  got:  {got}\n  want: {golden}")


def drill_kill_at_every_append(binary, tmp, golden, fsync=False):
    """SIGKILL at append N for N=1.., resuming until the batch survives."""
    tag = "kill-at-append" + ("+fsync" if fsync else "")
    journal = tmp / f"{tag}.jsonl"
    point = "journal.fsync" if fsync else "journal.append"
    repairs = 0
    for n in range(1, 20):
        proc = run_batch(binary, journal, faults=f"{point}#{n}=kill",
                         resume=n > 1, fsync=fsync)
        repairs += proc.stderr.count("repaired torn tail")
        if proc.returncode == 0:
            break
        if proc.returncode != -signal.SIGKILL:
            fail(f"{tag}: run {n} exited {proc.returncode}, want "
                 f"SIGKILL ({-signal.SIGKILL}) or clean 0")
            return
    else:
        fail(f"{tag}: batch never completed within 19 kill-resume rounds")
        return
    if n < 2:
        fail(f"{tag}: completed on round {n} -- the kill never fired")
    if not fsync and repairs < 1:
        fail(f"{tag}: {n - 1} mid-append kills but no tail was repaired")
    check_settled(journal, golden, tag)


def drill_failed_append(binary, tmp, golden, action):
    """A failed append must surface (exit 3) and resume to equivalence."""
    journal = tmp / f"append-{action}.jsonl"
    first = run_batch(binary, journal, faults=f"journal.append#2={action}")
    if first.returncode != 3:
        fail(f"append-{action}: exited {first.returncode}, want 3 "
             f"(a lost record must not look like success)")
        return
    if "journal append failed" not in first.stderr:
        fail(f"append-{action}: no append-failure report: {first.stderr!r}")
    second = run_batch(binary, journal, resume=True)
    if second.returncode != 0:
        fail(f"append-{action}: resume exited {second.returncode}:\n"
             f"{second.stderr}")
        return
    if action == "short" and "repaired torn tail" not in second.stderr:
        fail(f"append-{action}: resume never repaired the torn record")
    check_settled(journal, golden, f"append-{action}")


def drill_fsync_enospc(binary, tmp, golden):
    journal = tmp / "fsync-enospc.jsonl"
    first = run_batch(binary, journal, faults="journal.fsync#2=enospc",
                      fsync=True)
    if first.returncode != 3:
        fail(f"fsync-enospc: exited {first.returncode}, want 3")
        return
    second = run_batch(binary, journal, resume=True, fsync=True)
    if second.returncode != 0:
        fail(f"fsync-enospc: resume exited {second.returncode}")
        return
    check_settled(journal, golden, "fsync-enospc")


def drill_eintr_storm(binary, tmp, golden):
    journal = tmp / "eintr.jsonl"
    proc = run_batch(binary, journal, faults="journal.append#1+=eintr")
    if proc.returncode != 0:
        fail(f"eintr: exited {proc.returncode}, want 0 (EINTR storms "
             f"must be absorbed)")
        return
    if "fault: injected: journal.append x" not in proc.stderr:
        fail(f"eintr: no exit summary proving the fault fired: "
             f"{proc.stderr!r}")
    check_settled(journal, golden, "eintr")


def drill_seeded_determinism(binary, tmp):
    spec = "seed=7,journal.append%40=enospc"
    outcomes = []
    for round_ in ("a", "b"):
        journal = tmp / f"seeded-{round_}.jsonl"
        proc = run_batch(binary, journal, faults=spec)
        try:
            records = normalize(journal) if journal.exists() else []
        except json.JSONDecodeError:
            records = ["unparseable"]
        outcomes.append((proc.returncode, records))
    if outcomes[0] != outcomes[1]:
        fail(f"seeded: the same seeded schedule diverged: "
             f"rc {outcomes[0][0]} vs {outcomes[1][0]}")


def drill_cache_publish(binary, tmp):
    """Torn shared-cache publishes must cost rebuilds, never answers."""
    jobs = "gen:1:s8,gen:2:s8,gen:1:s8"

    def run_cached(journal, faults=None):
        cmd = [str(binary), f"--jobs={jobs}", "--parallel=1", "--retries=2",
               "--backoff-ms=1", f"--journal={journal}",
               "--partition-cache=shared"]
        env = dict(os.environ)
        env.pop("TBAA_FAULTS", None)
        if faults:
            env["TBAA_FAULTS"] = faults
        return subprocess.run(cmd, capture_output=True, text=True, env=env,
                              timeout=600)

    golden_journal = tmp / "cache-golden.jsonl"
    proc = run_cached(golden_journal)
    if proc.returncode != 0:
        fail(f"cache-publish: unfaulted cached run exited "
             f"{proc.returncode}:\n{proc.stderr}")
        return
    golden = normalize(golden_journal)

    journal = tmp / "cache-faulted.jsonl"
    proc = run_cached(journal, faults="cache.publish#1+=short")
    if proc.returncode != 0:
        fail(f"cache-publish: torn-publish run exited {proc.returncode} "
             f"(a torn cache entry must degrade, not fail the batch):\n"
             f"{proc.stderr}")
        return
    if "fault: injected: cache.publish x" not in proc.stderr:
        fail(f"cache-publish: no exit summary proving the tear fired: "
             f"{proc.stderr!r}")
    check_settled(journal, golden, "cache-publish")


def serve_request(sock_path, payload, deadline_s=10.0):
    giveup = time.monotonic() + deadline_s
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(5.0)
        try:
            sock.connect(str(sock_path))
            break
        except OSError:
            sock.close()
            if time.monotonic() >= giveup:
                return None
            time.sleep(0.02)
    try:
        sock.sendall((json.dumps(payload) + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(4096)
            if not chunk:
                return None
            buf += chunk
        return json.loads(buf)
    except (OSError, json.JSONDecodeError):
        return None
    finally:
        sock.close()


def drill_serve_fork_exhaustion(binary, tmp):
    """Every fork fails: the daemon must degrade, not die."""
    sock_path = tmp / "chaos.sock"
    env = dict(os.environ)
    env["TBAA_FAULTS"] = "pool.fork=eagain"
    daemon = subprocess.Popen(
        [str(binary), "serve", f"--socket={sock_path}", "--workers=2",
         "--max-queue=2", "--max-queue-per-client=2", "--retries=2",
         "--backoff-ms=1"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    try:
        health = serve_request(sock_path, {"req": "health"})
        if health is None:
            fail("serve: daemon with failing forks never answered health")
            return
        if health.get("health") != "ok" or health.get("workers", -1) != 0:
            fail(f"serve: health {health}, want ok with 0 workers")

        # The queue absorbs what it can -- admitted jobs answer only when
        # they settle, which with zero workers is never -- so the only
        # reply on this connection is the third submission bouncing off
        # the bound: overloaded, from a poll loop that is also failing a
        # fork attempt every iteration.
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(5.0)
        try:
            sock.connect(str(sock_path))
            sock.sendall(b'{"job":"format"}\n' * 3)
            buf = b""
            while not buf.endswith(b"\n"):
                chunk = sock.recv(4096)
                if not chunk:
                    break
                buf += chunk
            try:
                reply = json.loads(buf)
            except json.JSONDecodeError:
                reply = {}
            if reply.get("error") != "overloaded":
                fail(f"serve: queue past its bound answered {reply}, "
                     f"want overloaded")
        except OSError as exc:
            fail(f"serve: backpressure connection failed: {exc}")
            return
        finally:
            sock.close()

        if daemon.poll() is not None:
            fail(f"serve: daemon died (rc {daemon.returncode}) under "
                 f"fork exhaustion")
            return
        if serve_request(sock_path, {"req": "health"}) is None:
            fail("serve: daemon stopped answering after backpressure")

        # Queued jobs can never run (no worker will ever fork), so a
        # drain would wait forever by design; abort is the clean exit.
        daemon.send_signal(signal.SIGQUIT)
        if daemon.wait(timeout=30) != 0:
            fail(f"serve: abort exited {daemon.returncode}, want 0")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    m3batch, m3serve = Path(sys.argv[1]), Path(sys.argv[2])

    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        clean = tmp / "clean.jsonl"
        proc = run_batch(m3batch, clean)
        if proc.returncode != 0:
            fail(f"fault-free golden run exited {proc.returncode}:\n"
                 f"{proc.stderr}")
            return 1
        golden = normalize(clean)

        drill_kill_at_every_append(m3batch, tmp, golden)
        drill_kill_at_every_append(m3batch, tmp, golden, fsync=True)
        drill_failed_append(m3batch, tmp, golden, "enospc")
        drill_failed_append(m3batch, tmp, golden, "short")
        drill_fsync_enospc(m3batch, tmp, golden)
        drill_eintr_storm(m3batch, tmp, golden)
        drill_seeded_determinism(m3batch, tmp)
        drill_cache_publish(m3batch, tmp)
        drill_serve_fork_exhaustion(m3serve, tmp)

    if errors:
        print(f"chaos_drill: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("chaos_drill: all fault schedules recovered OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
